package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Labeled builds one labeled series name: Labeled("x", "group", "kv/s0")
// is `x{group="kv/s0"}`. The registry treats the result as an opaque
// instrument name — same string, same instrument — while the renderers
// split it back apart: WriteProm groups labeled variants of a base under
// one TYPE line and WriteText places histogram suffixes before the label
// set. kv lists label pairs; values are escaped per the text exposition
// format, names are sanitized.
func Labeled(base string, kv ...string) string {
	if len(kv) == 0 {
		return base
	}
	var sb strings.Builder
	sb.WriteString(base)
	sb.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(Sanitize(kv[i]))
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(kv[i+1]))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// escapeLabel escapes a label value for the prom text format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// splitLabeled splits a Labeled name into base and `{...}` suffix (which
// is empty for plain names).
func splitLabeled(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i:]
	}
	return name, ""
}

// sortFamilies sorts full instrument names by (base, labels) so every
// labeled variant of a base is contiguous — a plain byte sort would split
// the family apart ('_' < '{' puts x_total between x and x{...}).
func sortFamilies(names []string) {
	sort.Slice(names, func(i, j int) bool {
		bi, li := splitLabeled(names[i])
		bj, lj := splitLabeled(names[j])
		if bi != bj {
			return bi < bj
		}
		return li < lj
	})
}

// WriteProm renders the snapshot in the Prometheus text exposition
// format (version 0.0.4), so standard scrapers can consume the registry:
// counters and gauges keep their names, histograms become summaries with
// quantile labels and _sum/_count/_max series, durations in seconds.
// Instrument names are already in the prom-safe [a-zA-Z0-9_] alphabet
// (Sanitize enforces it at registration).
func (s Snapshot) WriteProm(w io.Writer) {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sortFamilies(names)
	prev := ""
	for _, n := range names {
		base, labels := splitLabeled(n)
		if base != prev {
			fmt.Fprintf(w, "# TYPE %s counter\n", base)
			prev = base
		}
		fmt.Fprintf(w, "%s%s %d\n", base, labels, s.Counters[n])
	}

	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sortFamilies(names)
	prev = ""
	for _, n := range names {
		base, labels := splitLabeled(n)
		if base != prev {
			fmt.Fprintf(w, "# TYPE %s gauge\n", base)
			prev = base
		}
		fmt.Fprintf(w, "%s%s %d\n", base, labels, s.Gauges[n])
	}

	names = names[:0]
	for n := range s.Hists {
		names = append(names, n)
	}
	sortFamilies(names)
	sec := func(d time.Duration) float64 { return d.Seconds() }
	prev = ""
	prevMax := ""
	for _, n := range names {
		h := s.Hists[n]
		nb, labels := splitLabeled(n)
		base := nb + "_seconds"
		// A labeled summary merges the series labels with the quantile
		// label: x_seconds{group="a",quantile="0.5"}.
		q := func(quantile string) string {
			if labels == "" {
				return `{quantile="` + quantile + `"}`
			}
			return labels[:len(labels)-1] + `,quantile="` + quantile + `"}`
		}
		if base != prev {
			fmt.Fprintf(w, "# TYPE %s summary\n", base)
			prev = base
		}
		fmt.Fprintf(w, "%s%s %g\n", base, q("0.5"), sec(h.P50))
		fmt.Fprintf(w, "%s%s %g\n", base, q("0.95"), sec(h.P95))
		fmt.Fprintf(w, "%s%s %g\n", base, q("0.99"), sec(h.P99))
		fmt.Fprintf(w, "%s_sum%s %g\n", base, labels, sec(h.Sum))
		fmt.Fprintf(w, "%s_count%s %d\n", base, labels, h.Count)
		if base != prevMax {
			fmt.Fprintf(w, "# TYPE %s_max gauge\n", base)
			prevMax = base
		}
		fmt.Fprintf(w, "%s_max%s %g\n", base, labels, sec(h.Max))
	}
}
