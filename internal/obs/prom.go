package obs

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// WriteProm renders the snapshot in the Prometheus text exposition
// format (version 0.0.4), so standard scrapers can consume the registry:
// counters and gauges keep their names, histograms become summaries with
// quantile labels and _sum/_count/_max series, durations in seconds.
// Instrument names are already in the prom-safe [a-zA-Z0-9_] alphabet
// (Sanitize enforces it at registration).
func (s Snapshot) WriteProm(w io.Writer) {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, s.Counters[n])
	}

	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", n, n, s.Gauges[n])
	}

	names = names[:0]
	for n := range s.Hists {
		names = append(names, n)
	}
	sort.Strings(names)
	sec := func(d time.Duration) float64 { return d.Seconds() }
	for _, n := range names {
		h := s.Hists[n]
		base := n + "_seconds"
		fmt.Fprintf(w, "# TYPE %s summary\n", base)
		fmt.Fprintf(w, "%s{quantile=\"0.5\"} %g\n", base, sec(h.P50))
		fmt.Fprintf(w, "%s{quantile=\"0.95\"} %g\n", base, sec(h.P95))
		fmt.Fprintf(w, "%s{quantile=\"0.99\"} %g\n", base, sec(h.P99))
		fmt.Fprintf(w, "%s_sum %g\n", base, sec(h.Sum))
		fmt.Fprintf(w, "%s_count %d\n", base, h.Count)
		fmt.Fprintf(w, "# TYPE %s_max gauge\n%s_max %g\n", base, base, sec(h.Max))
	}
}
