// Package netsim models the networked environment of the paper's
// evaluation: processes placed at named sites, a latency matrix between
// sites (low-latency LAN, high-latency WAN paths between Newcastle, London
// and Pisa), per-message CPU costs that make servers and sequencers
// saturate, plus partition and message-loss injection for failure tests.
//
// The model is pure bookkeeping: it answers "what does delivering this
// message cost?"; the in-memory transport (internal/transport/memnet) turns
// those answers into actual delays. Latencies are scaled down roughly 4x
// from the paper's 1999-era numbers so full evaluation sweeps run in
// seconds while preserving every LAN/WAN ratio the paper reports.
package netsim

import (
	"math/rand"
	"sync"
	"time"

	"newtop/internal/ids"
)

// Canonical site names used throughout the evaluation harness.
const (
	SiteLAN       = "lan"
	SiteNewcastle = "newcastle"
	SiteLondon    = "london"
	SitePisa      = "pisa"
)

// Profile fixes the timing constants of an environment.
type Profile struct {
	// Name labels the profile in experiment output.
	Name string
	// Local is the one-way latency between two processes at the same site.
	Local time.Duration
	// Wide maps an unordered site pair (keyed with PairKey) to its one-way
	// latency. Pairs not present fall back to DefaultWide.
	Wide map[[2]string]time.Duration
	// DefaultWide is the one-way latency between distinct sites that have
	// no entry in Wide.
	DefaultWide time.Duration
	// JitterFrac adds a uniform random [0, JitterFrac) fraction of the
	// latency to each message.
	JitterFrac float64
	// SendCPU is the processing cost charged synchronously to the sender
	// for each outgoing message (the ORB marshals and issues a synchronous
	// invocation per destination, so multicasting to n members costs n of
	// these).
	SendCPU time.Duration
	// RecvCPU is the processing cost charged at the receiver per inbound
	// message; inbound processing is serialized per process, which is what
	// saturates a server or a sequencer under load.
	RecvCPU time.Duration
}

// PairKey returns the canonical (sorted) key for a site pair.
func PairKey(a, b string) [2]string {
	if b < a {
		a, b = b, a
	}
	return [2]string{a, b}
}

// EvalProfile is the calibrated profile used by the reproduction of the
// paper's evaluation: ~100 Mbit switched LAN and 1999-era Internet paths
// between Newcastle, London and Pisa. Times are scaled UP ~2x from the
// paper's real scale so that every modeled duration is comfortably above
// the host kernel's sleep granularity (~1.2 ms) — sub-millisecond sleeps
// are silently rounded up and would destroy the LAN/WAN ratios the
// evaluation depends on. Only ratios matter for reproducing the paper's
// shapes; EXPERIMENTS.md discusses the scaling.
func EvalProfile() Profile {
	return Profile{
		Name:        "eval",
		Local:       2 * time.Millisecond,
		DefaultWide: 24 * time.Millisecond,
		Wide: map[[2]string]time.Duration{
			PairKey(SiteNewcastle, SiteLondon): 16 * time.Millisecond,
			PairKey(SiteNewcastle, SitePisa):   28 * time.Millisecond,
			PairKey(SiteLondon, SitePisa):      24 * time.Millisecond,
		},
		JitterFrac: 0.05,
		SendCPU:    1500 * time.Microsecond,
		RecvCPU:    2500 * time.Microsecond,
	}
}

// FastProfile is an aggressively scaled profile for unit and integration
// tests: the same shape as EvalProfile but an order of magnitude quicker,
// with no jitter so tests are deterministic.
func FastProfile() Profile {
	return Profile{
		Name:        "fast",
		Local:       0,
		DefaultWide: 300 * time.Microsecond,
		Wide:        map[[2]string]time.Duration{},
		JitterFrac:  0,
		SendCPU:     0,
		RecvCPU:     0,
	}
}

// Latency returns the one-way latency between two sites (excluding jitter).
// An empty site is treated as its own site distinct from every other, so
// unplaced processes still get DefaultWide paths to everything else.
func (p Profile) Latency(a, b string) time.Duration {
	if a == b {
		return p.Local
	}
	if d, ok := p.Wide[PairKey(a, b)]; ok {
		return d
	}
	return p.DefaultWide
}

// Network places processes at sites and tracks dynamic conditions:
// partitions, crashed processes and probabilistic message loss. It is safe
// for concurrent use.
type Network struct {
	profile Profile

	mu        sync.Mutex
	rng       *rand.Rand
	sites     map[ids.ProcessID]string
	partition map[ids.ProcessID]int
	crashed   map[ids.ProcessID]bool
	lossProb  float64
}

// New returns a network with the given profile. Seed fixes the jitter and
// loss randomness so experiments are repeatable.
func New(profile Profile, seed int64) *Network {
	return &Network{
		profile:   profile,
		rng:       rand.New(rand.NewSource(seed)),
		sites:     make(map[ids.ProcessID]string),
		partition: make(map[ids.ProcessID]int),
		crashed:   make(map[ids.ProcessID]bool),
	}
}

// Profile returns the timing profile of the network.
func (n *Network) Profile() Profile { return n.profile }

// Place assigns a process to a site. Calling Place again moves the process.
func (n *Network) Place(p ids.ProcessID, site string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.sites[p] = site
}

// SiteOf returns the site a process was placed at ("" if never placed).
func (n *Network) SiteOf(p ids.ProcessID) string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.sites[p]
}

// SetPartition puts a process into a numbered partition; processes in
// different partitions cannot exchange messages. All processes start in
// partition 0. Heal by setting everything back to the same number.
func (n *Network) SetPartition(p ids.ProcessID, part int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partition[p] = part
}

// Crash marks a process as crashed: nothing is delivered to or from it.
func (n *Network) Crash(p ids.ProcessID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.crashed[p] = true
}

// Crashed reports whether a process has been crashed.
func (n *Network) Crashed(p ids.ProcessID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.crashed[p]
}

// SetLoss sets the probability in [0, 1] that any given message is dropped.
func (n *Network) SetLoss(prob float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.lossProb = prob
}

// Verdict is the simulator's decision about one message.
type Verdict struct {
	// Deliver is false when the message must be dropped (partition, crash
	// or random loss).
	Deliver bool
	// Latency is the one-way propagation delay, jitter included.
	Latency time.Duration
}

// Judge decides the fate of a message from one process to another.
func (n *Network) Judge(from, to ids.ProcessID) Verdict {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.crashed[from] || n.crashed[to] || n.partition[from] != n.partition[to] {
		return Verdict{}
	}
	if n.lossProb > 0 && n.rng.Float64() < n.lossProb {
		return Verdict{}
	}
	lat := n.profile.Latency(n.sites[from], n.sites[to])
	if n.profile.JitterFrac > 0 && lat > 0 {
		lat += time.Duration(n.rng.Float64() * n.profile.JitterFrac * float64(lat))
	}
	return Verdict{Deliver: true, Latency: lat}
}

// SendCost returns the CPU cost charged to a sender per outgoing message.
func (n *Network) SendCost() time.Duration { return n.profile.SendCPU }

// RecvCost returns the CPU cost charged at a receiver per inbound message.
func (n *Network) RecvCost() time.Duration { return n.profile.RecvCPU }
