package netsim_test

import (
	"testing"
	"testing/quick"
	"time"

	"newtop/internal/netsim"
)

func TestProfileLatencySymmetric(t *testing.T) {
	p := netsim.EvalProfile()
	f := func(aIdx, bIdx uint8) bool {
		sites := []string{netsim.SiteLAN, netsim.SiteNewcastle, netsim.SiteLondon, netsim.SitePisa, "elsewhere"}
		a, b := sites[int(aIdx)%len(sites)], sites[int(bIdx)%len(sites)]
		return p.Latency(a, b) == p.Latency(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProfileLocalVsWide(t *testing.T) {
	p := netsim.EvalProfile()
	local := p.Latency(netsim.SiteLAN, netsim.SiteLAN)
	for _, pair := range [][2]string{
		{netsim.SiteNewcastle, netsim.SiteLondon},
		{netsim.SiteNewcastle, netsim.SitePisa},
		{netsim.SiteLondon, netsim.SitePisa},
		{"x", "y"},
	} {
		wide := p.Latency(pair[0], pair[1])
		if wide <= local*4 {
			t.Errorf("WAN %v latency %v not clearly above LAN %v", pair, wide, local)
		}
	}
}

func TestJudgeLatencyAndJitter(t *testing.T) {
	n := netsim.New(netsim.EvalProfile(), 1)
	n.Place("a", netsim.SiteNewcastle)
	n.Place("b", netsim.SitePisa)
	base := netsim.EvalProfile().Latency(netsim.SiteNewcastle, netsim.SitePisa)
	for i := 0; i < 100; i++ {
		v := n.Judge("a", "b")
		if !v.Deliver {
			t.Fatal("message dropped with no fault injected")
		}
		if v.Latency < base || v.Latency > base+base/10 {
			t.Fatalf("latency %v outside [%v, %v+5%%]", v.Latency, base, base)
		}
	}
}

func TestPartitionBlocksTraffic(t *testing.T) {
	n := netsim.New(netsim.FastProfile(), 1)
	n.Place("a", netsim.SiteLAN)
	n.Place("b", netsim.SiteLAN)
	if !n.Judge("a", "b").Deliver {
		t.Fatal("pre-partition message dropped")
	}
	n.SetPartition("b", 1)
	if n.Judge("a", "b").Deliver || n.Judge("b", "a").Deliver {
		t.Fatal("cross-partition message delivered")
	}
	n.SetPartition("b", 0)
	if !n.Judge("a", "b").Deliver {
		t.Fatal("healed partition still blocks")
	}
}

func TestCrashBlocksBothDirections(t *testing.T) {
	n := netsim.New(netsim.FastProfile(), 1)
	n.Place("a", netsim.SiteLAN)
	n.Place("b", netsim.SiteLAN)
	n.Crash("b")
	if !n.Crashed("b") || n.Crashed("a") {
		t.Fatal("Crashed bookkeeping wrong")
	}
	if n.Judge("a", "b").Deliver || n.Judge("b", "a").Deliver {
		t.Fatal("crashed process still exchanging messages")
	}
}

func TestLossProbability(t *testing.T) {
	n := netsim.New(netsim.FastProfile(), 42)
	n.Place("a", netsim.SiteLAN)
	n.Place("b", netsim.SiteLAN)
	n.SetLoss(0.5)
	dropped := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		if !n.Judge("a", "b").Deliver {
			dropped++
		}
	}
	if dropped < trials/3 || dropped > 2*trials/3 {
		t.Fatalf("loss 0.5 dropped %d/%d", dropped, trials)
	}
	n.SetLoss(0)
	if !n.Judge("a", "b").Deliver {
		t.Fatal("loss 0 dropped a message")
	}
}

func TestDeterministicSeed(t *testing.T) {
	run := func() []bool {
		n := netsim.New(netsim.FastProfile(), 99)
		n.Place("a", netsim.SiteLAN)
		n.Place("b", netsim.SiteLAN)
		n.SetLoss(0.3)
		out := make([]bool, 50)
		for i := range out {
			out[i] = n.Judge("a", "b").Deliver
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d", i)
		}
	}
}

func TestPairKeyCanonical(t *testing.T) {
	if netsim.PairKey("x", "y") != netsim.PairKey("y", "x") {
		t.Fatal("PairKey not canonical")
	}
}

func TestEvalProfileAboveSleepGranularity(t *testing.T) {
	// Every modeled duration must exceed ~1.2ms or the host kernel's
	// sleep floor silently distorts the ratios (see EXPERIMENTS.md).
	p := netsim.EvalProfile()
	floor := 1200 * time.Microsecond
	for _, d := range []time.Duration{p.Local, p.DefaultWide, p.SendCPU, p.RecvCPU} {
		if d < floor {
			t.Errorf("duration %v below the sleep floor %v", d, floor)
		}
	}
}
