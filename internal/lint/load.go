package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader type-checks the module's packages from source. Imports inside the
// module resolve against the module tree; everything else (the standard
// library) resolves through go/importer's source compiler, so the loader
// needs no pre-built export data and no tooling beyond the stdlib.
type Loader struct {
	Root   string // absolute module root (directory holding go.mod)
	Module string // module path from go.mod ("newtop")
	Fset   *token.FileSet

	ctx  build.Context
	std  types.ImporterFrom
	pkgs map[string]*loadEntry // keyed by import path
}

type loadEntry struct {
	pkg     *Package
	tpkg    *types.Package
	err     error
	loading bool
}

// NewLoader roots a loader at the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	root, mod, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	src, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer unavailable")
	}
	ctx := build.Default
	return &Loader{
		Root:   root,
		Module: mod,
		Fset:   fset,
		ctx:    ctx,
		std:    src,
		pkgs:   make(map[string]*loadEntry),
	}, nil
}

// findModule walks upward from dir to the enclosing go.mod.
func findModule(dir string) (root, module string, err error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		d = parent
	}
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.Root, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths load
// from the module tree, the rest from stdlib source.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
		e := l.load(path)
		return e.tpkg, e.err
	}
	return l.std.ImportFrom(path, dir, mode)
}

// Load type-checks one module package by import path.
func (l *Loader) Load(path string) (*Package, error) {
	e := l.load(path)
	return e.pkg, e.err
}

// load resolves and memoizes one module package.
func (l *Loader) load(path string) *loadEntry {
	if e, ok := l.pkgs[path]; ok {
		if e.loading {
			return &loadEntry{err: fmt.Errorf("lint: import cycle through %q", path)}
		}
		return e
	}
	e := &loadEntry{loading: true}
	l.pkgs[path] = e
	dir := filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(strings.TrimPrefix(path, l.Module), "/")))
	e.pkg, e.tpkg, e.err = l.loadDir(dir, path)
	e.loading = false
	return e
}

// LoadDir type-checks the package in an explicit directory (lint fixture
// packages under testdata, which pattern expansion deliberately skips).
// The package is registered under a synthetic module-internal import path
// so analyzers see ordinary-looking paths.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.Root, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("lint: %s is outside module %s", dir, l.Root)
	}
	path := l.Module + "/" + filepath.ToSlash(rel)
	if e, ok := l.pkgs[path]; ok {
		return e.pkg, e.err
	}
	e := &loadEntry{}
	e.pkg, e.tpkg, e.err = l.loadDir(abs, path)
	l.pkgs[path] = e
	return e.pkg, e.err
}

// loadDir parses and type-checks the non-test Go files of one directory.
func (l *Loader) loadDir(dir, path string) (*Package, *types.Package, error) {
	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, nil, fmt.Errorf("lint: %s: %w", path, err)
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, nil, fmt.Errorf("lint: %s: %w", path, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var terrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { terrs = append(terrs, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	if len(terrs) > 0 {
		return nil, nil, fmt.Errorf("lint: type-checking %s: %v", path, terrs[0])
	}
	return &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.Fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, tpkg, nil
}

// Expand resolves package patterns ("./...", "./internal/gcs",
// "newtop/internal/wire") into module import paths, in sorted order.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			paths, err := l.walk(l.Root)
			if err != nil {
				return nil, err
			}
			for _, p := range paths {
				add(p)
			}
		case strings.HasSuffix(pat, "/..."):
			base := strings.TrimSuffix(pat, "/...")
			dir, err := l.patternDir(base)
			if err != nil {
				return nil, err
			}
			paths, err := l.walk(dir)
			if err != nil {
				return nil, err
			}
			for _, p := range paths {
				add(p)
			}
		default:
			dir, err := l.patternDir(pat)
			if err != nil {
				return nil, err
			}
			rel, err := filepath.Rel(l.Root, dir)
			if err != nil {
				return nil, err
			}
			if rel == "." {
				add(l.Module)
			} else {
				add(l.Module + "/" + filepath.ToSlash(rel))
			}
		}
	}
	sort.Strings(out)
	return out, nil
}

// patternDir maps one non-wildcard pattern to a directory.
func (l *Loader) patternDir(pat string) (string, error) {
	if pat == l.Module {
		return l.Root, nil
	}
	if rest, ok := strings.CutPrefix(pat, l.Module+"/"); ok {
		return filepath.Join(l.Root, filepath.FromSlash(rest)), nil
	}
	if strings.HasPrefix(pat, "./") || pat == "." {
		return filepath.Join(l.Root, filepath.FromSlash(strings.TrimPrefix(pat, "./"))), nil
	}
	return "", fmt.Errorf("lint: unsupported package pattern %q", pat)
}

// walk lists every directory under root that contains buildable Go files,
// skipping testdata, hidden and underscore-prefixed directories (matching
// the go tool's pattern rules).
func (l *Loader) walk(root string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if _, err := l.ctx.ImportDir(p, 0); err != nil {
			if _, ok := err.(*build.NoGoError); ok {
				return nil
			}
			return err
		}
		rel, err := filepath.Rel(l.Root, p)
		if err != nil {
			return err
		}
		if rel == "." {
			out = append(out, l.Module)
		} else {
			out = append(out, l.Module+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	return out, err
}
