package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// This file builds the interprocedural call graph the module-level
// analyzers walk. The graph is deliberately static: an edge exists only
// when the callee is resolvable at type-check time — a named function, a
// method called on a concrete receiver, or a function value whose binding
// is unambiguous within its package. Interface dispatch and escaping
// function values stay *dynamic* edges; analyzers must attribute them
// (allocflow counts each one as an allocation-relevant site) rather than
// silently treating them as leaves.

// CallEdge is one call expression inside a function body.
type CallEdge struct {
	Call   *ast.CallExpr
	Callee *types.Func // nil for dynamic calls (interface dispatch, unknown function values)
	Go     bool        // the call is the operand of a go statement
	Defer  bool        // the call is the operand of a defer statement
	InLit  bool        // the call sits inside a function literal that is not invoked on the spot
}

// CallNode is one declared function with a body.
type CallNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	Out  []CallEdge // call sites in body order
}

// CallGraph indexes every function declared in a set of packages.
type CallGraph struct {
	nodes map[*types.Func]*CallNode
	order []*CallNode // deterministic: package load order, then file/decl order
	// fnVals maps package-scoped variables that are bound to exactly one
	// statically known function across the whole package ("f := helper"
	// followed by "f()") — the same-package function-value resolution the
	// static edges extend through.
	fnVals map[*types.Var]*types.Func
}

// BuildCallGraph walks every function declaration in pkgs and records its
// resolved static call sites. Function literals are attributed to their
// enclosing declaration: code inside a literal still runs as a consequence
// of the enclosing function, so its calls are edges (marked InLit unless
// the literal is invoked immediately).
func BuildCallGraph(pkgs []*Package) *CallGraph {
	cg := &CallGraph{
		nodes:  make(map[*types.Func]*CallNode),
		fnVals: make(map[*types.Var]*types.Func),
	}
	for _, p := range pkgs {
		cg.collectFnVals(p)
	}
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &CallNode{Fn: obj, Decl: fd, Pkg: p}
				cg.walkBody(p, node, fd.Body, false)
				cg.nodes[obj] = node
				cg.order = append(cg.order, node)
			}
		}
	}
	return cg
}

// collectFnVals scans one package for variables bound to statically known
// functions. A variable assigned two different functions (or anything not
// a plain function identifier) is ambiguous and resolves to nothing.
func (cg *CallGraph) collectFnVals(p *Package) {
	ambiguous := make(map[*types.Var]bool)
	bind := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		v, ok := p.Info.Defs[id].(*types.Var)
		if !ok {
			v, ok = p.Info.Uses[id].(*types.Var)
			if !ok {
				return
			}
		}
		if _, isSig := v.Type().Underlying().(*types.Signature); !isSig {
			return
		}
		fn := funcValueOf(p.Info, rhs)
		if fn == nil {
			ambiguous[v] = true
			return
		}
		if prev, ok := cg.fnVals[v]; ok && prev != fn {
			ambiguous[v] = true
			return
		}
		cg.fnVals[v] = fn
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				if len(st.Lhs) == len(st.Rhs) {
					for i := range st.Lhs {
						bind(st.Lhs[i], st.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				if len(st.Names) == len(st.Values) {
					for i := range st.Names {
						bind(st.Names[i], st.Values[i])
					}
				}
			}
			return true
		})
	}
	for v := range ambiguous {
		delete(cg.fnVals, v)
	}
}

// funcValueOf resolves an expression to the function it denotes, when that
// is a plain (possibly package-qualified) function identifier.
func funcValueOf(info *types.Info, e ast.Expr) *types.Func {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[x].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		// pkg.Fn as a value; method values (x.M) are excluded — their
		// receiver binding makes them dynamic for our purposes.
		if _, isSel := info.Selections[x]; isSel {
			return nil
		}
		if fn, ok := info.Uses[x.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// walkBody records every call expression under b as an edge of node.
func (cg *CallGraph) walkBody(p *Package, node *CallNode, b ast.Node, inLit bool) {
	ast.Inspect(b, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.GoStmt:
			cg.addEdge(p, node, st.Call, CallEdge{Go: true, InLit: inLit})
			cg.walkCallParts(p, node, st.Call, inLit)
			return false
		case *ast.DeferStmt:
			cg.addEdge(p, node, st.Call, CallEdge{Defer: true, InLit: inLit})
			cg.walkCallParts(p, node, st.Call, inLit)
			return false
		case *ast.CallExpr:
			cg.addEdge(p, node, st, CallEdge{InLit: inLit})
			cg.walkCallParts(p, node, st, inLit)
			return false
		case *ast.FuncLit:
			// Reached only when the literal is not the operand of a call we
			// already unwrapped: its body belongs to the enclosing function
			// but runs at some later point.
			cg.walkBody(p, node, st.Body, true)
			return false
		}
		return true
	})
}

// walkCallParts visits the operands of a call that addEdge consumed: the
// arguments, the function expression (receivers, chained calls), and — for
// an immediately invoked function literal — the literal body at the
// caller's literal depth.
func (cg *CallGraph) walkCallParts(p *Package, node *CallNode, call *ast.CallExpr, inLit bool) {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		cg.walkBody(p, node, lit.Body, inLit)
	} else {
		cg.walkBody(p, node, call.Fun, inLit)
	}
	for _, a := range call.Args {
		cg.walkBody(p, node, a, inLit)
	}
}

// addEdge resolves one call and appends the edge. Type conversions,
// builtins and immediately invoked function literals (whose bodies are
// walked inline) are not calls in the call-graph sense and record no edge.
func (cg *CallGraph) addEdge(p *Package, node *CallNode, call *ast.CallExpr, proto CallEdge) {
	if tv, ok := p.Info.Types[call.Fun]; ok && (tv.IsType() || tv.IsBuiltin()) {
		return
	}
	if _, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return
	}
	proto.Call = call
	proto.Callee = cg.ResolveCall(p, call)
	node.Out = append(node.Out, proto)
}

// ResolveCall returns the static callee of a call expression: a named
// function or concrete method via calleeOf, or a same-package function
// value with an unambiguous binding. Nil means the call is dynamic —
// including interface dispatch, whose method object has no body to walk.
func (cg *CallGraph) ResolveCall(p *Package, call *ast.CallExpr) *types.Func {
	if fn := calleeOf(p.Info, call); fn != nil {
		if rt := recvTypeOf(fn); rt != nil {
			if _, iface := rt.Underlying().(*types.Interface); iface {
				return nil
			}
		}
		return fn
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if v, ok := p.Info.Uses[id].(*types.Var); ok {
			return cg.fnVals[v]
		}
	}
	return nil
}

// Node returns the graph node for fn, or nil when fn has no body in the
// analyzed set.
func (cg *CallGraph) Node(fn *types.Func) *CallNode { return cg.nodes[fn] }

// Nodes returns every node in deterministic order.
func (cg *CallGraph) Nodes() []*CallNode { return cg.order }

// Reachable computes the static call closure from roots: every function
// with a body in the analyzed set that some chain of resolved edges (plain
// calls, go statements, deferred calls and calls inside function literals
// all count — that code runs as a consequence of the root) reaches.
func (cg *CallGraph) Reachable(roots ...*types.Func) map[*types.Func]bool {
	seen := make(map[*types.Func]bool)
	var stack []*types.Func
	for _, r := range roots {
		if r != nil && !seen[r] {
			seen[r] = true
			stack = append(stack, r)
		}
	}
	for len(stack) > 0 {
		fn := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		node := cg.nodes[fn]
		if node == nil {
			continue
		}
		for _, e := range node.Out {
			if e.Callee != nil && !seen[e.Callee] {
				seen[e.Callee] = true
				stack = append(stack, e.Callee)
			}
		}
	}
	return seen
}

// FuncNamed resolves an entry-point spec of the form
//
//	path/to/pkg.FuncName
//	path/to/pkg.(*Recv).Method
//	path/to/pkg.Recv.Method
//
// against the loaded packages (package paths match on suffix so synthetic
// fixture paths resolve too). It returns nil when nothing matches.
func FuncNamed(pkgs []*Package, spec string) *types.Func {
	pkgPath, recv, name := splitEntrySpec(spec)
	if name == "" {
		return nil
	}
	for _, p := range pkgs {
		if !hasPathSuffix(p.Path, pkgPath) && p.Path != pkgPath {
			continue
		}
		scope := p.Types.Scope()
		if recv == "" {
			if fn, ok := scope.Lookup(name).(*types.Func); ok {
				return fn
			}
			continue
		}
		tn, ok := scope.Lookup(recv).(*types.TypeName)
		if !ok {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		for i := 0; i < named.NumMethods(); i++ {
			if m := named.Method(i); m.Name() == name {
				return m
			}
		}
	}
	return nil
}

// splitEntrySpec parses "pkg.(*T).M" / "pkg.T.M" / "pkg.F".
func splitEntrySpec(spec string) (pkgPath, recv, name string) {
	if i := strings.Index(spec, ".(*"); i >= 0 {
		pkgPath = spec[:i]
		rest := spec[i+3:]
		j := strings.Index(rest, ").")
		if j < 0 {
			return "", "", ""
		}
		return pkgPath, rest[:j], rest[j+2:]
	}
	// No pointer receiver marker: the name is the last segment; the one
	// before it is either the receiver type or the package's last path
	// element. Disambiguate by trying receiver form first only when there
	// are at least two dots after the final slash.
	slash := strings.LastIndex(spec, "/")
	tail := spec[slash+1:]
	parts := strings.Split(tail, ".")
	switch len(parts) {
	case 2: // pkg.F
		return spec[:len(spec)-len(parts[1])-1], "", parts[1]
	case 3: // pkg.T.M
		name = parts[2]
		recv = parts[1]
		return spec[:len(spec)-len(name)-len(recv)-2], recv, name
	}
	return "", "", ""
}
