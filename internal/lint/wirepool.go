package lint

import (
	"go/ast"
	"go/types"
)

// WirePool enforces the pooled-writer contract of internal/wire: once a
// writer has been handed back with wire.PutWriter, neither the writer nor
// any slice obtained from its Bytes method may be touched again — the
// pool will hand the same buffer to a concurrent encoder, and a retained
// Bytes slice then silently carries another message's bytes. The safe
// shapes are "use, then PutWriter" and "Detach, PutWriter, use the
// detached copy"; Detach slices are independent and never flagged.
//
// The check is block-ordered and deliberately shallow: a PutWriter call
// that is a direct statement of a block taints the writer (and its Bytes
// aliases) for the remaining statements of that block, until the variable
// is rebound with a fresh GetWriter/NewWriter. Puts inside a nested
// branch do not taint the enclosing block (the branch usually returns),
// and a deferred PutWriter runs last and taints nothing.
func WirePool() *Analyzer {
	return &Analyzer{
		Name:    "wirepool",
		Doc:     "pooled wire.Writer and its Bytes slices must not be used after PutWriter",
		Applies: internalOnly,
		Run:     runWirePool,
	}
}

func runWirePool(p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			block, ok := n.(*ast.BlockStmt)
			if !ok {
				return true
			}
			checkPoolBlock(p, block, &diags)
			return true
		})
	}
	return diags
}

// checkPoolBlock scans one statement list for direct PutWriter calls and
// flags later uses of the recycled writer or its Bytes aliases.
func checkPoolBlock(p *Package, block *ast.BlockStmt, diags *[]Diagnostic) {
	// aliases maps a byte-slice variable to the writer variable whose
	// Bytes backing it shares, collected across the whole block first so
	// an alias bound before the put is caught when used after it.
	aliases := make(map[*types.Var]*types.Var)
	for _, st := range block.List {
		assign, ok := st.(*ast.AssignStmt)
		if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
			continue
		}
		if w := bytesCallReceiver(p.Info, assign.Rhs[0]); w != nil {
			if v := varOf(p.Info, assign.Lhs[0]); v != nil {
				aliases[v] = w
			}
		}
	}
	for i, st := range block.List {
		w := directPutWriterArg(p.Info, st)
		if w == nil {
			continue
		}
		for _, later := range block.List[i+1:] {
			if rebindsWriter(p.Info, later, w) {
				break
			}
			flagWriterUses(p, later, w, aliases, diags)
		}
	}
}

// directPutWriterArg returns the writer variable recycled by a statement
// of the form `wire.PutWriter(w)`, or nil.
func directPutWriterArg(info *types.Info, st ast.Stmt) *types.Var {
	expr, ok := st.(*ast.ExprStmt)
	if !ok {
		return nil
	}
	call, ok := ast.Unparen(expr.X).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return nil
	}
	fn := calleeOf(info, call)
	if fn == nil || fn.Name() != "PutWriter" || fn.Pkg() == nil ||
		!hasPathSuffix(fn.Pkg().Path(), "internal/wire") {
		return nil
	}
	return varOf(info, call.Args[0])
}

// bytesCallReceiver returns the writer variable w for an expression
// `w.Bytes()`, or nil.
func bytesCallReceiver(info *types.Info, e ast.Expr) *types.Var {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Bytes" {
		return nil
	}
	w := varOf(info, sel.X)
	if w == nil || !isNamedType(w.Type(), "internal/wire", "Writer") {
		return nil
	}
	return w
}

// rebindsWriter reports whether st assigns w a fresh writer
// (wire.GetWriter or wire.NewWriter), which ends the tainted region.
func rebindsWriter(info *types.Info, st ast.Stmt, w *types.Var) bool {
	assign, ok := st.(*ast.AssignStmt)
	if !ok {
		return false
	}
	for i, lhs := range assign.Lhs {
		if varOf(info, lhs) != w || i >= len(assign.Rhs) {
			continue
		}
		call, ok := ast.Unparen(assign.Rhs[i]).(*ast.CallExpr)
		if !ok {
			continue
		}
		fn := calleeOf(info, call)
		if fn != nil && (fn.Name() == "GetWriter" || fn.Name() == "NewWriter") &&
			fn.Pkg() != nil && hasPathSuffix(fn.Pkg().Path(), "internal/wire") {
			return true
		}
	}
	return false
}

// flagWriterUses reports every mention of the recycled writer w or of a
// Bytes alias of it inside st.
func flagWriterUses(p *Package, st ast.Stmt, w *types.Var, aliases map[*types.Var]*types.Var, diags *[]Diagnostic) {
	ast.Inspect(st, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := p.Info.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		switch {
		case obj == w:
			*diags = append(*diags, Diagnostic{
				Rule: "wirepool",
				Pos:  p.Fset.Position(id.Pos()),
				Msg:  "use of pooled writer " + id.Name + " after wire.PutWriter: the buffer may already back another message",
			})
		case aliases[obj] == w:
			*diags = append(*diags, Diagnostic{
				Rule: "wirepool",
				Pos:  p.Fset.Position(id.Pos()),
				Msg:  "use of " + id.Name + " (aliases the recycled writer's Bytes) after wire.PutWriter: Detach before recycling",
			})
		}
		return true
	})
}

// varOf resolves an expression to the variable it names, or nil.
func varOf(info *types.Info, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	switch obj := info.Uses[id].(type) {
	case *types.Var:
		return obj
	}
	if obj, ok := info.Defs[id].(*types.Var); ok {
		return obj
	}
	return nil
}
