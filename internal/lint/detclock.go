package lint

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"strconv"
	"strings"
)

// DetClock forbids wall-clock and randomness in protocol-decision code.
// The ordering protocols (symmetric Lamport merge, sequencer assignment),
// view agreement and duplicate filtering must be functions of message
// history alone: a time.Now() or math/rand in a decision path makes runs
// non-deterministic, breaks netsim replay, and can diverge replicas. All
// timer-driven machinery is confined to tick.go (the allowlisted file);
// the remaining legitimate uses — failure-detector bookkeeping
// (lastHeard), time-silence pacing (lastSentAt) and observability
// timestamps (bornAt, span starts) — carry an explicit
// //lint:ok detclock annotation naming which of those they are.
func DetClock() *Analyzer {
	return &Analyzer{
		Name:    "detclock",
		Doc:     "no wall clock or math/rand in protocol-decision code",
		Applies: pathIn("internal/gcs", "internal/vclock"),
		Run:     runDetClock,
	}
}

// detclockAllowFiles are file basenames exempt from the rule: the tick
// layer and the shared timer wheel that drives it are exactly where
// wall-clock time is supposed to live.
var detclockAllowFiles = map[string]bool{
	"tick.go":  true,
	"wheel.go": true,
}

// forbidden time package functions (time.Time arithmetic on received
// values is fine; *sampling* the clock is not).
var detclockTimeFuncs = map[string]bool{
	"Now":   true,
	"Since": true,
	"Until": true,
}

func runDetClock(p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Files {
		base := filepath.Base(p.Fset.Position(f.Pos()).Filename)
		if detclockAllowFiles[base] {
			continue
		}
		for _, imp := range f.Imports {
			path, _ := strconv.Unquote(imp.Path.Value)
			if path == "math/rand" || path == "math/rand/v2" {
				diags = append(diags, Diagnostic{
					Rule: "detclock",
					Pos:  p.Fset.Position(imp.Pos()),
					Msg:  fmt.Sprintf("import of %s in protocol code (randomness breaks deterministic replay)", path),
				})
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := p.Info.Uses[id]
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			switch obj.Pkg().Path() {
			case "time":
				if detclockTimeFuncs[obj.Name()] {
					diags = append(diags, Diagnostic{
						Rule: "detclock",
						Pos:  p.Fset.Position(id.Pos()),
						Msg: fmt.Sprintf("time.%s in protocol code (wall clock makes ordering decisions non-replayable; move to tick.go or annotate the liveness/obs use)",
							obj.Name()),
					})
				}
			case "math/rand", "math/rand/v2":
				if !strings.HasPrefix(obj.Name(), "_") {
					diags = append(diags, Diagnostic{
						Rule: "detclock",
						Pos:  p.Fset.Position(id.Pos()),
						Msg:  fmt.Sprintf("%s.%s in protocol code (randomness breaks deterministic replay)", obj.Pkg().Path(), obj.Name()),
					})
				}
			}
			return true
		})
	}
	return diags
}
