package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// WireSym checks encode/decode symmetry of wire envelopes. Every message
// struct in this codebase is marshalled by hand through the
// internal/wire Writer/Reader pair; the classic failure is adding a field
// to the struct and the encoder but forgetting the decoder (or vice
// versa), which silently desynchronises replicas instead of failing. The
// analyzer finds, per package, the struct types whose fields are touched
// by both an encode-path function (one that takes a *wire.Writer or calls
// wire.NewWriter) and a decode-path function (*wire.Reader /
// wire.NewReader), and requires every exported field of such a struct to
// appear on both paths. Unexported fields are exempt: by repo convention
// they never cross the wire (dataMsg.bornAt).
func WireSym() *Analyzer {
	return &Analyzer{
		Name:    "wiresym",
		Doc:     "wire envelope structs must encode and decode every exported field",
		Applies: internalOnly,
		Run:     runWireSym,
	}
}

const wirePkgSuffix = "internal/wire"

func runWireSym(p *Package) []Diagnostic {
	encoded := make(map[*types.Var]bool) // struct fields read on an encode path
	decoded := make(map[*types.Var]bool) // struct fields written on a decode path

	// ownField maps a field object to its defining named struct type when
	// that struct is declared in this package.
	localStructs := localStructTypes(p)
	ownField := make(map[*types.Var]*types.Named)
	for _, named := range localStructs {
		st := named.Underlying().(*types.Struct)
		for i := 0; i < st.NumFields(); i++ {
			ownField[st.Field(i)] = named
		}
	}
	if len(ownField) == 0 {
		return nil
	}

	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			enc, dec := codecRole(p, fd)
			if !enc && !dec {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch node := n.(type) {
				case *ast.SelectorExpr:
					sel, ok := p.Info.Selections[node]
					if !ok || sel.Kind() != types.FieldVal {
						return true
					}
					field, ok := sel.Obj().(*types.Var)
					if !ok || ownField[field] == nil {
						return true
					}
					if enc {
						encoded[field] = true
					}
					// Writes are classified at the AssignStmt below; a bare
					// selector in a decoder is a read (length checks etc.)
					// and does not mark the field as decoded.
				case *ast.AssignStmt:
					if !dec {
						return true
					}
					for _, lhs := range node.Lhs {
						markFieldWrite(p, lhs, ownField, decoded)
					}
				case *ast.CompositeLit:
					if !dec {
						return true
					}
					markCompositeLit(p, node, ownField, decoded)
				}
				return true
			})
		}
	}

	var diags []Diagnostic
	for _, named := range localStructs {
		st := named.Underlying().(*types.Struct)
		anyEnc, anyDec := false, false
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			anyEnc = anyEnc || encoded[f]
			anyDec = anyDec || decoded[f]
		}
		if !anyEnc || !anyDec {
			continue // not a wire-marshalled struct in this package
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !f.Exported() {
				continue
			}
			switch {
			case encoded[f] && !decoded[f]:
				diags = append(diags, Diagnostic{
					Rule: "wiresym",
					Pos:  p.Fset.Position(f.Pos()),
					Msg: fmt.Sprintf("field %s.%s is encoded but never decoded (decoder out of sync with the wire format)",
						named.Obj().Name(), f.Name()),
				})
			case decoded[f] && !encoded[f]:
				diags = append(diags, Diagnostic{
					Rule: "wiresym",
					Pos:  p.Fset.Position(f.Pos()),
					Msg: fmt.Sprintf("field %s.%s is decoded but never encoded (encoder out of sync with the wire format)",
						named.Obj().Name(), f.Name()),
				})
			}
		}
	}
	return diags
}

// localStructTypes lists the named struct types declared in the package,
// in declaration order.
func localStructTypes(p *Package) []*types.Named {
	var out []*types.Named
	scope := p.Types.Scope()
	type posNamed struct {
		pos   token.Pos
		named *types.Named
	}
	var tmp []posNamed
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, ok := named.Underlying().(*types.Struct); !ok {
			continue
		}
		tmp = append(tmp, posNamed{tn.Pos(), named})
	}
	sort.Slice(tmp, func(i, j int) bool { return tmp[i].pos < tmp[j].pos })
	for _, t := range tmp {
		out = append(out, t.named)
	}
	return out
}

// codecRole classifies a function as encode-path and/or decode-path.
func codecRole(p *Package, fd *ast.FuncDecl) (enc, dec bool) {
	check := func(t types.Type) {
		if isNamedType(t, wirePkgSuffix, "Writer") {
			enc = true
		}
		if isNamedType(t, wirePkgSuffix, "Reader") {
			dec = true
		}
	}
	if fd.Recv != nil {
		for _, f := range fd.Recv.List {
			if tv, ok := p.Info.Types[f.Type]; ok {
				check(tv.Type)
			}
		}
	}
	for _, f := range fd.Type.Params.List {
		if tv, ok := p.Info.Types[f.Type]; ok {
			check(tv.Type)
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := calleeOf(p.Info, call); fn != nil && fn.Pkg() != nil && hasPathSuffix(fn.Pkg().Path(), wirePkgSuffix) {
			switch fn.Name() {
			case "NewWriter":
				enc = true
			case "NewReader":
				dec = true
			}
		}
		return true
	})
	return enc, dec
}

// markFieldWrite records a decode-path write through a field selector.
// Nested selectors count at every level: `m.Config.Order = ...` populates
// both Order and the local Config field it is reached through.
func markFieldWrite(p *Package, lhs ast.Expr, ownField map[*types.Var]*types.Named, decoded map[*types.Var]bool) {
	for {
		sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
		if !ok {
			return
		}
		if s, ok := p.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
			if field, ok := s.Obj().(*types.Var); ok && ownField[field] != nil {
				decoded[field] = true
			}
		}
		lhs = sel.X
	}
}

// markCompositeLit records decode-path writes made by a struct literal of
// a local struct type: keyed elements mark their named field, positional
// literals mark every field.
func markCompositeLit(p *Package, lit *ast.CompositeLit, ownField map[*types.Var]*types.Named, decoded map[*types.Var]bool) {
	tv, ok := p.Info.Types[lit]
	if !ok {
		return
	}
	named := namedOrigin(tv.Type)
	if named == nil || named.Obj().Pkg() == nil || named.Obj().Pkg() != p.Types {
		return
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return
	}
	if len(lit.Elts) == 0 {
		return
	}
	keyed := false
	for _, el := range lit.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			keyed = true
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			if obj, ok := p.Info.Uses[key].(*types.Var); ok && ownField[obj] != nil {
				decoded[obj] = true
			}
		}
	}
	if !keyed {
		// Positional literal: every field is populated.
		for i := 0; i < st.NumFields(); i++ {
			if ownField[st.Field(i)] != nil {
				decoded[st.Field(i)] = true
			}
		}
	}
}
