package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoOrphan flags `go` statements that spawn an unstoppable goroutine: one
// whose body (followed through same-package static calls) contains an
// unconditional `for` loop but no stop signal — no channel receive or
// select, no range over a channel, no context.Context, and no
// sync.WaitGroup accounting. Every pump in this codebase (transport
// receive loops, gcs tick loops, ORB collectors) must be reapable by
// Stop/Close, or netsim worlds and long-running nodes leak goroutines;
// the leakcheck test helper is the runtime twin of this rule.
//
// Goroutines that run bounded work and exit are fine without a stop
// signal; the rule only fires when an infinite loop is reachable.
func GoOrphan() *Analyzer {
	return &Analyzer{
		Name:    "goorphan",
		Doc:     "every spawned goroutine with an unbounded loop needs a stop signal",
		Applies: internalOnly,
		Run:     runGoOrphan,
	}
}

func runGoOrphan(p *Package) []Diagnostic {
	// Index same-package function declarations for call following.
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
					decls[obj] = fd
				}
			}
		}
	}

	var diags []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			var body *ast.BlockStmt
			switch fun := ast.Unparen(gs.Call.Fun).(type) {
			case *ast.FuncLit:
				body = fun.Body
			default:
				if fn := calleeOf(p.Info, gs.Call); fn != nil {
					if fd := decls[fn]; fd != nil {
						body = fd.Body
					}
				}
			}
			if body == nil {
				return true // dynamic or cross-package target: not analyzable
			}
			g := &orphanScan{p: p, decls: decls, seen: map[*ast.BlockStmt]bool{}}
			g.scan(body)
			if g.infiniteLoop && !g.stopSignal {
				diags = append(diags, Diagnostic{
					Rule: "goorphan",
					Pos:  p.Fset.Position(gs.Pos()),
					Msg:  "goroutine loops forever with no stop signal (no channel receive/select, context, or WaitGroup in reach); Stop/Close cannot reap it",
				})
			}
			return true
		})
	}
	return diags
}

// orphanScan accumulates loop/stop evidence over a goroutine body and the
// same-package functions it calls.
type orphanScan struct {
	p     *Package
	decls map[*types.Func]*ast.FuncDecl
	seen  map[*ast.BlockStmt]bool

	infiniteLoop bool
	stopSignal   bool
}

func (g *orphanScan) scan(body *ast.BlockStmt) {
	if g.seen[body] {
		return
	}
	g.seen[body] = true
	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.ForStmt:
			if node.Cond == nil {
				g.infiniteLoop = true
			}
		case *ast.SelectStmt:
			g.stopSignal = true
		case *ast.UnaryExpr:
			if node.Op == token.ARROW {
				g.stopSignal = true
			}
		case *ast.RangeStmt:
			if tv, ok := g.p.Info.Types[node.X]; ok && isChan(tv.Type) {
				g.stopSignal = true
			}
		case *ast.Ident:
			if obj := g.p.Info.Uses[node]; obj != nil {
				if isNamedType(obj.Type(), "context", "Context") {
					g.stopSignal = true
				}
			}
		case *ast.CallExpr:
			fn := calleeOf(g.p.Info, node)
			if fn == nil {
				return true
			}
			if fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
				if rt := recvTypeOf(fn); rt != nil && isNamedType(rt, "sync", "WaitGroup") {
					g.stopSignal = true
				}
			}
			if fn.Pkg() == g.p.Types {
				if fd := g.decls[fn]; fd != nil {
					g.scan(fd.Body)
				}
			}
		}
		return true
	})
}
