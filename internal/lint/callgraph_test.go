package lint

import (
	"go/ast"
	"strings"
	"testing"
)

// callgraphDebug is a test-only module analyzer that reports, at every
// call edge, the builder's static resolution and edge flags — the golden
// fixture pins the call graph's semantics with want comments.
func callgraphDebug() *Analyzer {
	return &Analyzer{
		Name: "callgraph",
		Doc:  "test-only: report every call edge's static resolution",
		RunModule: func(pkgs []*Package, _ *Suppressor) []Diagnostic {
			cg := BuildCallGraph(pkgs)
			var out []Diagnostic
			for _, n := range cg.Nodes() {
				for _, e := range n.Out {
					msg := "dynamic"
					if e.Callee != nil {
						msg = "resolves to " + e.Callee.Name()
					}
					switch {
					case e.Go:
						msg += " (go)"
					case e.Defer:
						msg += " (defer)"
					case e.InLit:
						msg += " (in literal)"
					}
					out = append(out, Diagnostic{
						Rule: "callgraph",
						Pos:  n.Pkg.Fset.Position(e.Call.Pos()),
						Msg:  msg,
					})
				}
			}
			return out
		},
	}
}

func TestCallGraph(t *testing.T) { runFixture(t, "callgraph", callgraphDebug()) }

// TestCallGraphReachable pins the closure semantics: go statements and
// literal-deferred calls are reachable, and unreferenced functions are
// not.
func TestCallGraphReachable(t *testing.T) {
	ld := fixtureLoader(t)
	pkg, err := ld.LoadDir("testdata/callgraph")
	if err != nil {
		t.Fatal(err)
	}
	cg := BuildCallGraph([]*Package{pkg})
	entry := FuncNamed([]*Package{pkg}, "testdata/callgraph.values")
	if entry == nil {
		t.Fatal("entry values not found")
	}
	reach := cg.Reachable(entry)
	names := map[string]bool{}
	for fn := range reach {
		names[fn.Name()] = true
	}
	for _, want := range []string{"values", "a", "b", "m", "n"} {
		if !names[want] {
			t.Errorf("expected %s reachable from values; reach = %v", want, names)
		}
	}
	if entry2 := FuncNamed([]*Package{pkg}, "testdata/callgraph.(*T).m"); entry2 == nil {
		t.Error("FuncNamed failed to resolve pointer-receiver method spec")
	} else if r := cg.Reachable(entry2); len(r) != 2 { // m and n
		t.Errorf("Reachable(m) = %d functions, want 2", len(r))
	}

	// One declared body per graph node, every node resolvable back.
	for _, n := range cg.Nodes() {
		if n.Decl == nil || n.Decl.Body == nil {
			t.Errorf("node %s has no body", n.Fn.Name())
		}
		if cg.Node(n.Fn) != n {
			t.Errorf("Node(%s) does not round-trip", n.Fn.Name())
		}
	}
}

// TestStaleSuppression checks CheckModule's escape-hatch inventory: a
// //lint:ok directive whose rule ran but matched nothing is reported.
func TestStaleSuppression(t *testing.T) {
	ld := fixtureLoader(t)
	pkg, err := ld.LoadDir("testdata/staleok")
	if err != nil {
		t.Fatal(err)
	}
	mock := &Analyzer{
		Name: "mock",
		Doc:  "test-only: flags the declaration of Covered",
		Run: func(p *Package) []Diagnostic {
			var out []Diagnostic
			for _, f := range p.Files {
				for _, d := range f.Decls {
					if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "Covered" {
						out = append(out, Diagnostic{Rule: "mock", Pos: p.Fset.Position(fd.Pos()), Msg: "mock finding"})
					}
				}
			}
			return out
		},
	}
	diags := CheckModule([]*Package{pkg}, []*Analyzer{mock})
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly the stale-directive report: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Rule != "directive" || !strings.Contains(d.Msg, "stale //lint:ok mock") {
		t.Errorf("unexpected diagnostic: %s", d)
	}

	// The same run through Check (fixture semantics) performs no stale
	// detection and the covered finding stays suppressed: no output.
	if diags := Check([]*Package{pkg}, []*Analyzer{mock}); len(diags) != 0 {
		t.Errorf("Check reported %v, want none", diags)
	}
}
