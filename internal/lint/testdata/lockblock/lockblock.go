// Package lockblock is a lint fixture: blocking operations under a mutex,
// the *Locked naming convention, and under-lock propagation through
// helpers. Expectations live in the `// want` comments.
package lockblock

import (
	"sync"
	"time"
)

type loop struct {
	mu   sync.Mutex
	cond *sync.Cond
	wake chan struct{}
}

func (l *loop) sleepHeld() {
	l.mu.Lock()
	time.Sleep(time.Millisecond) // want lockblock "time.Sleep while l.mu is held"
	l.mu.Unlock()
	time.Sleep(time.Millisecond) // released before this point: no finding
}

func (l *loop) sendHeld() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.wake <- struct{}{} // want lockblock "channel send"
}

func (l *loop) recvHeld() {
	l.mu.Lock()
	<-l.wake // want lockblock "channel receive"
	l.mu.Unlock()
}

func (l *loop) selectHeld() {
	l.mu.Lock()
	defer l.mu.Unlock()
	select { // want lockblock "select without default"
	case <-l.wake:
	}
}

// A select with a default branch never parks the goroutine.
func (l *loop) pollHeld() {
	l.mu.Lock()
	defer l.mu.Unlock()
	select {
	case <-l.wake:
	default:
	}
}

func (l *loop) rangeHeld() {
	l.mu.Lock()
	for range l.wake { // want lockblock "range over channel"
		break
	}
	l.mu.Unlock()
}

func (l *loop) condHeld() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.cond.Wait() // want lockblock "sync.Cond.Wait"
}

// drainLocked is entered with the mutex held by naming convention.
func (l *loop) drainLocked() {
	time.Sleep(time.Millisecond) // want lockblock "the caller's mutex"
}

// helper inherits the under-lock property from its *Locked caller.
func (l *loop) pumpLocked() {
	l.helper()
}

func (l *loop) helper() {
	time.Sleep(time.Millisecond) // want lockblock "can run with a mutex held"
}

// A spawned goroutine does not inherit the spawner's locks.
func (l *loop) spawn() {
	l.mu.Lock()
	defer l.mu.Unlock()
	go l.sleeper()
}

func (l *loop) sleeper() {
	time.Sleep(time.Millisecond)
}

// The escape hatch: an annotated deliberate block under the lock.
func (l *loop) paced() {
	l.mu.Lock()
	time.Sleep(time.Millisecond) //lint:ok lockblock fixture: simulated processing cost, deliberate
	l.mu.Unlock()
}
