// Package lockblock is a lint fixture: blocking operations under a mutex,
// the *Locked naming convention, and under-lock propagation through
// helpers. Expectations live in the `// want` comments.
package lockblock

import (
	"context"
	"sync"
	"time"

	"newtop/internal/core"
)

type loop struct {
	mu   sync.Mutex
	cond *sync.Cond
	wake chan struct{}
}

func (l *loop) sleepHeld() {
	l.mu.Lock()
	time.Sleep(time.Millisecond) // want lockblock "time.Sleep while l.mu is held"
	l.mu.Unlock()
	time.Sleep(time.Millisecond) // released before this point: no finding
}

func (l *loop) sendHeld() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.wake <- struct{}{} // want lockblock "channel send"
}

func (l *loop) recvHeld() {
	l.mu.Lock()
	<-l.wake // want lockblock "channel receive"
	l.mu.Unlock()
}

func (l *loop) selectHeld() {
	l.mu.Lock()
	defer l.mu.Unlock()
	select { // want lockblock "select without default"
	case <-l.wake:
	}
}

// A select with a default branch never parks the goroutine.
func (l *loop) pollHeld() {
	l.mu.Lock()
	defer l.mu.Unlock()
	select {
	case <-l.wake:
	default:
	}
}

func (l *loop) rangeHeld() {
	l.mu.Lock()
	for range l.wake { // want lockblock "range over channel"
		break
	}
	l.mu.Unlock()
}

func (l *loop) condHeld() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.cond.Wait() // want lockblock "sync.Cond.Wait"
}

// drainLocked is entered with the mutex held by naming convention.
func (l *loop) drainLocked() {
	time.Sleep(time.Millisecond) // want lockblock "the caller's mutex"
}

// helper inherits the under-lock property from its *Locked caller.
func (l *loop) pumpLocked() {
	l.helper()
}

func (l *loop) helper() {
	time.Sleep(time.Millisecond) // want lockblock "can run with a mutex held"
}

// A spawned goroutine does not inherit the spawner's locks.
func (l *loop) spawn() {
	l.mu.Lock()
	defer l.mu.Unlock()
	go l.sleeper()
}

func (l *loop) sleeper() {
	time.Sleep(time.Millisecond)
}

// The escape hatch: an annotated deliberate block under the lock.
func (l *loop) paced() {
	l.mu.Lock()
	time.Sleep(time.Millisecond) //lint:ok lockblock fixture: simulated processing cost, deliberate
	l.mu.Unlock()
}

// --- the core invocation surface blocks; never call it under a mutex ---

// Awaiting a Call future parks until the reply set (or cancellation).
func (l *loop) awaitHeld(c *core.Call) {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, _ = c.Await(context.Background()) // want lockblock "core.Call.Await"
}

// A blocking invocation under an event-loop mutex stalls the group.
func (l *loop) invokeHeld(b *core.Binding) {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, _ = b.Call(context.Background(), "m", nil) // want lockblock "core.Binding.Call"
}

// Even the async launch blocks when the call window is full.
func (l *loop) launchHeld(b *core.Binding) {
	l.mu.Lock()
	defer l.mu.Unlock()
	_, _ = b.InvokeAsync(context.Background(), "m", nil) // want lockblock "core.Binding.InvokeAsync"
}

// The future's done channel is an ordinary channel: receiving it under a
// mutex is the plain channel-receive finding.
func (l *loop) doneHeld(c *core.Call) {
	l.mu.Lock()
	<-c.Done() // want lockblock "channel receive"
	l.mu.Unlock()
}

// Launching async and deferring the await past the unlock is the correct
// shape: no findings.
func (l *loop) launchThenAwait(b *core.Binding) {
	l.mu.Lock()
	held := l.wake // snapshot state under the lock
	l.mu.Unlock()
	_ = held
	c, err := b.InvokeAsync(context.Background(), "m", nil)
	if err != nil {
		return
	}
	_, _ = c.Await(context.Background())
}
