// Package callgraph is the golden fixture for the interprocedural call
// graph builder. The test runs a debug analyzer that reports, at every
// recorded call edge, how the builder resolved it — a static callee name,
// or "dynamic" — plus the edge's go/defer/literal flags.
package callgraph

var cond bool

func a() {
	b() // want callgraph "resolves to b"
}

func b() {}

type T struct{}

func (t *T) m() {
	t.n() // want callgraph "resolves to n"
}

func (t *T) n() {}

func values(t *T) {
	// A variable bound to exactly one function resolves statically.
	f := b
	f() // want callgraph "resolves to b"

	// Two conflicting bindings make the value ambiguous: dynamic.
	g := a
	if cond {
		g = b
	}
	g() // want callgraph "dynamic"

	go b()    // want callgraph "resolves to b (go)"
	defer a() // want callgraph "resolves to a (defer)"

	// An immediately invoked literal is not an edge; the call inside it
	// belongs to the enclosing function at literal depth zero.
	func() {
		b() // want callgraph "resolves to b"
	}()

	// A literal that escapes the call site keeps its calls, marked as
	// sitting inside a literal.
	h := func() {
		a() // want callgraph "resolves to a (in literal)"
	}
	h() // want callgraph "dynamic"

	t.m() // want callgraph "resolves to m"

	// Method values are deliberately not resolved.
	mv := t.n
	mv() // want callgraph "dynamic"
}
