// Package directive is a lint fixture: malformed //lint:ok directives are
// themselves findings (under the "directive" rule), checked by a
// dedicated test rather than `// want` comments.
package directive

//lint:ok
func missingRuleAndReason() {}

//lint:ok errdrop
func missingReason() {}

//lint:ok errdrop a well-formed directive that suppresses nothing is fine
func wellFormed() {}
