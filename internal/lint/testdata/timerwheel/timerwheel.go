// Package timerwheel is a lint fixture: private timer goroutines in group
// communication code that must schedule on the shared wheel instead.
// Expectations live in the `// want` comments.
package timerwheel

import "time"

type group struct {
	tick time.Duration
}

// A per-group ticker goroutine is the exact pattern the wheel replaces.
func (g *group) tickLoop(stop <-chan struct{}) {
	t := time.NewTicker(g.tick) // want timerwheel "time.NewTicker"
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
	}
}

// AfterFunc spawns a hidden timer goroutine per call.
func (g *group) arm(fn func()) *time.Timer {
	return time.AfterFunc(g.tick, fn) // want timerwheel "time.AfterFunc"
}

// time.Tick leaks a ticker that can never be stopped.
func (g *group) leakyBeat() <-chan time.Time {
	return time.Tick(g.tick) // want timerwheel "time.Tick"
}

// One-shot timer waits (join retries, bounded sleeps) are fine: they end.
func (g *group) wait(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	<-t.C
}

// The escape hatch: an annotated deliberate exception.
func (g *group) probe(stop <-chan struct{}) {
	t := time.NewTicker(time.Minute) //lint:ok timerwheel demo exception: fixture exercises the escape hatch
	defer t.Stop()
	<-stop
}
