// Package allocflow is the golden fixture for the allocflow analyzer. The
// test budgets the entry point Hot at zero sites, so every classified
// allocation site in Hot's static call closure must be reported — and
// nothing in Cold, which is unreachable from Hot, may be.
package allocflow

import (
	"strconv"
	"sync/atomic"
)

type payload struct {
	b []byte
}

type sink interface {
	accept(v any)
}

var (
	global  *payload
	counter int64
	dest    sink
)

func Hot(n int) { // want allocflow "exceed the budget"
	esc := &payload{} // want allocflow "&composite literal escapes"
	global = esc

	s := []int{1, 2, 3}        // want allocflow "slice literal allocates"
	m := map[string]int{}      // want allocflow "map literal allocates"
	m["grown"] = n             // want allocflow "map assignment may grow"
	mp := make(map[int]int)    // want allocflow "make(map) allocates"
	ch := make(chan int, 1)    // want allocflow "make(chan) allocates"
	buf := make([]byte, 0, 16) // want allocflow "make([]T) allocates"

	// Capacity evidence: buf was made with an explicit capacity, so this
	// append is not a site.
	buf = append(buf, byte(n))
	s = append(s, 4) // want allocflow "append may grow"

	str := string(buf) // want allocflow "conversion copies"
	bs := []byte(str)  // want allocflow "conversion copies"
	cat := str + "!"   // want allocflow "string concatenation"

	f := func() { esc.b = bs } // want allocflow "closure allocates"
	f()                        // want allocflow "dynamic call"

	box(n)           // want allocflow "interface boxing"
	dest.accept(cat) // want allocflow "interface boxing" allocflow "dynamic call"

	go helper() // want allocflow "go statement"

	_ = strconv.Itoa(n) // want allocflow "leaves the analyzed set"
	atomic.AddInt64(&counter, 1)

	//lint:ok allocflow deliberate: fixture exercises suppression
	global = &payload{}

	_, _ = mp, ch
}

// helper is reachable from Hot via the go statement; its sites count.
func helper() {
	global = new(payload) // want allocflow "new(T) allocates"
}

func box(v any) {
	_ = v
}

// Cold is not reachable from Hot: none of its sites may be reported.
func Cold() {
	global = &payload{}
	_ = make([]int, 8)
}
