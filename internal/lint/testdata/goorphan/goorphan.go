// Package goorphan is a lint fixture: goroutines with unbounded loops and
// the stop signals that make them reapable. Expectations live in the
// `// want` comments.
package goorphan

import "context"

type pump struct {
	stop chan struct{}
}

func step() {}

// An infinite loop with nothing to stop it: orphaned.
func (p *pump) bad() {
	go func() { // want goorphan "no stop signal"
		for {
			step()
		}
	}()
}

// Same orphan, spawned through a named same-package function.
func (p *pump) badNamed() {
	go p.spin() // want goorphan "no stop signal"
}

func (p *pump) spin() {
	for {
		step()
	}
}

// The loop is reached transitively through a helper call.
func (p *pump) badDeep() {
	go func() { // want goorphan "no stop signal"
		p.run()
	}()
}

func (p *pump) run() {
	for {
		step()
	}
}

// A select gives Stop/Close a way in: fine.
func (p *pump) okSelect() {
	go func() {
		for {
			select {
			case <-p.stop:
				return
			default:
				step()
			}
		}
	}()
}

// Bounded work needs no stop signal.
func (p *pump) okBounded() {
	go func() {
		for i := 0; i < 3; i++ {
			step()
		}
	}()
}

// Ranging over a channel ends when the channel closes: fine.
func (p *pump) okRange(in chan int) {
	go func() {
		for range in {
			step()
		}
	}()
}

// A context in scope counts as a stop signal.
func (p *pump) okCtx(ctx context.Context) {
	go func() {
		for {
			if ctx.Err() != nil {
				return
			}
			step()
		}
	}()
}

// The escape hatch: a process-lifetime pump, annotated.
func (p *pump) suppressed() {
	go func() { //lint:ok goorphan process-lifetime pump, reaped at exit
		for {
			step()
		}
	}()
}

// --- Call-future completion goroutines (the core async surface) ---

// future models the Call future: a done channel plus a reply stream.
type future struct {
	done    chan struct{}
	replies chan int
}

// await parks in a select until completion or cancellation — the shape of
// core's awaitReplySet/awaitDirectReplies/awaitSet helpers.
func (f *future) await() bool {
	select {
	case <-f.replies:
		return true
	case <-f.done:
		return true
	}
}

// completed is a non-blocking probe with no stop signal in it.
func (f *future) completed() bool { return false }

// A completion goroutine that parks in the await helper is reapable:
// cancelling the future closes done and the select wakes. Clean.
func (p *pump) okFutureCompletion(f *future) {
	go func() {
		for {
			if f.await() {
				return
			}
			step()
		}
	}()
}

// The polling variant spins forever when the future never completes —
// nothing in reach can stop it. Flagged.
func (p *pump) badFuturePoll(f *future) {
	go func() { // want goorphan "no stop signal"
		for {
			if f.completed() {
				return
			}
			step()
		}
	}()
}
