// Package wirepool is a lint fixture: pooled-writer lifecycles, correct
// and seeded with use-after-recycle bugs. Expectations live in the
// `// want` comments.
package wirepool

import "newtop/internal/wire"

func send(to string, b []byte) error { return nil }

// encodeDetached is the canonical safe shape: detach, recycle, use the
// independent copy. No findings.
func encodeDetached() []byte {
	w := wire.GetWriter()
	w.Uvarint(7)
	out := w.Detach()
	wire.PutWriter(w)
	return out
}

// useThenPut keeps the writer alive across the whole use. No findings.
func useThenPut() {
	w := wire.GetWriter()
	w.String("hello")
	_ = send("a", w.Bytes())
	wire.PutWriter(w)
}

// writeAfterPut keeps encoding into a recycled buffer.
func writeAfterPut() {
	w := wire.GetWriter()
	w.Uvarint(1)
	wire.PutWriter(w)
	w.Uvarint(2) // want wirepool "use of pooled writer w after wire.PutWriter"
}

// bytesEscape sends a Bytes alias after the writer went back to the pool.
func bytesEscape() {
	w := wire.GetWriter()
	w.String("payload")
	frame := w.Bytes()
	wire.PutWriter(w)
	_ = send("b", frame) // want wirepool "aliases the recycled writer's Bytes"
}

// doublePut recycles twice; the second hand-back is itself a use.
func doublePut() {
	w := wire.GetWriter()
	w.Byte(1)
	wire.PutWriter(w)
	wire.PutWriter(w) // want wirepool "use of pooled writer w after wire.PutWriter"
}

// rebind puts the old writer back and starts over with a fresh one; uses
// after the rebind are clean.
func rebind() []byte {
	w := wire.GetWriter()
	w.Byte(1)
	wire.PutWriter(w)
	w = wire.GetWriter()
	w.Byte(2)
	out := w.Detach()
	wire.PutWriter(w)
	return out
}

// branchPut recycles on an early-exit path only; the fall-through use is
// on a different path and stays clean.
func branchPut(fail bool) []byte {
	w := wire.GetWriter()
	w.Byte(3)
	if fail {
		wire.PutWriter(w)
		return nil
	}
	out := w.Detach()
	wire.PutWriter(w)
	return out
}

// deferredPut runs at function exit, after every use. No findings.
func deferredPut() {
	w := wire.GetWriter()
	defer wire.PutWriter(w)
	w.String("x")
	_ = send("c", w.Bytes())
}

// annotated shows the escape hatch for a reviewed exception.
func annotated() {
	w := wire.GetWriter()
	w.Byte(9)
	wire.PutWriter(w)
	_ = w //lint:ok wirepool fixture exercises the suppression path
}
