// Package staleok is the fixture for stale-suppression detection: the
// first //lint:ok directive covers a real finding of the test's mock rule,
// the second suppresses nothing and must itself be reported.
package staleok

//lint:ok mock covered: the mock rule reports this declaration
func Covered() {}

//lint:ok mock stale: the mock rule reports nothing here
func Stale() {}
