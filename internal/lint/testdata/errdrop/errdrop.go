// Package errdrop is a lint fixture: send-path error returns thrown away
// in each of the shapes the analyzer recognises. Expectations live in the
// `// want` comments.
package errdrop

import (
	"context"
	"fmt"

	"newtop/internal/gcs"
	"newtop/internal/ids"
	"newtop/internal/transport"
)

func drops(ep transport.Endpoint, g *gcs.Group, to ids.ProcessID, msg []byte) {
	ep.Send(to, msg)                          // want errdrop "ignored"
	_ = ep.Send(to, msg)                      // want errdrop "discarded with _"
	go g.Multicast(context.Background(), msg) // want errdrop "lost by go statement"
	defer ep.Send(to, msg)                    // want errdrop "lost by defer"
}

// Handling or propagating the error is the expected shape.
func handled(ep transport.Endpoint, to ids.ProcessID, msg []byte) error {
	if err := ep.Send(to, msg); err != nil {
		return err
	}
	err := ep.Send(to, msg)
	return err
}

// Errors from functions off the send path may be dropped freely.
func otherDrop() {
	_ = fmt.Errorf("not a send path")
}

// The escape hatch: an annotated deliberate best-effort drop.
func annotated(ep transport.Endpoint, to ids.ProcessID, msg []byte) {
	_ = ep.Send(to, msg) //lint:ok errdrop best-effort fixture drop, resend recovers
}
