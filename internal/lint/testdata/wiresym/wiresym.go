// Package wiresym is a lint fixture: hand-rolled wire codecs with seeded
// encode/decode asymmetries. Expectations live in the `// want` comments.
package wiresym

import "newtop/internal/wire"

// ping is fully symmetric: no findings. The unexported mark field is
// exempt by convention (unexported state never crosses the wire).
type ping struct {
	Seq  uint64
	Node string
	mark bool
}

func encodePing(w *wire.Writer, m *ping) {
	w.Uvarint(m.Seq)
	w.String(m.Node)
	m.mark = true
}

func decodePing(r *wire.Reader) *ping {
	m := &ping{}
	m.Seq = r.Uvarint()
	m.Node = r.String()
	return m
}

// pong is out of sync in both directions.
type pong struct {
	Seq   uint64
	Extra string // want wiresym "encoded but never decoded"
	Stale string // want wiresym "decoded but never encoded"
}

func encodePong(w *wire.Writer, m *pong) {
	w.Uvarint(m.Seq)
	w.String(m.Extra)
}

func decodePong(r *wire.Reader) *pong {
	m := &pong{}
	m.Seq = r.Uvarint()
	m.Stale = r.String()
	return m
}

// outer/inner mirror bindRequest.Config: the decoder populates the nested
// struct field by field, which must count as decoding Cfg itself.
type inner struct {
	Tick int64
}

type outer struct {
	Cfg inner
}

func encodeOuter(w *wire.Writer, m *outer) {
	w.Varint(m.Cfg.Tick)
}

func decodeOuter(r *wire.Reader) *outer {
	m := &outer{}
	m.Cfg.Tick = r.Varint()
	return m
}

// local demonstrates the escape hatch for deliberately one-sided fields.
type local struct {
	Seq  uint64
	Cost int64 //lint:ok wiresym node-local tuning knob, deliberately not wire-carried
}

func encodeLocal(w *wire.Writer, m *local) {
	w.Uvarint(m.Seq)
	w.Varint(m.Cost)
}

func decodeLocal(r *wire.Reader) *local {
	m := &local{}
	m.Seq = r.Uvarint()
	return m
}

// roundTrip keeps the codec helpers referenced so the fixture type-checks
// under tools that flag unused code.
func roundTrip() {
	w := wire.NewWriter()
	encodePing(w, &ping{})
	encodePong(w, &pong{})
	encodeOuter(w, &outer{})
	encodeLocal(w, &local{})
	r := wire.NewReader(w.Bytes())
	decodePing(r)
	decodePong(r)
	decodeOuter(r)
	decodeLocal(r)
}
