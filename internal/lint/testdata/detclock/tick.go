package detclock

import "time"

// tick.go is the allowlisted timer layer: sampling the clock here is the
// point, so none of these produce findings.
func nowTick() time.Time {
	return time.Now()
}

func sinceTick(at time.Time) time.Duration {
	return time.Since(at)
}
