// Package detclock is a lint fixture: wall clock and randomness leaking
// into protocol-decision code, with tick.go as the allowlisted home for
// timer machinery. Expectations live in the `// want` comments.
package detclock

import (
	"math/rand" // want detclock "randomness breaks deterministic replay"
	"time"
)

type proto struct {
	lastHeard map[string]time.Time
	deadline  time.Time
}

func (p *proto) decide(seed int64) bool {
	return rand.Int63() > seed // want detclock "math/rand.Int63"
}

func (p *proto) stamp() {
	p.deadline = time.Now() // want detclock "time.Now"
}

func (p *proto) idle(at time.Time) time.Duration {
	return time.Since(at) // want detclock "time.Since"
}

// Arithmetic on received time values is fine; only sampling the clock is
// forbidden.
func (p *proto) expired(at time.Time) bool {
	return at.Add(time.Second).Before(p.deadline)
}

// The escape hatch: annotated liveness bookkeeping.
func (p *proto) heard(from string) {
	p.lastHeard[from] = time.Now() //lint:ok detclock failure-detector liveness bookkeeping
}

// A read lease validated against the wall clock is the canonical mistake
// the rule exists for: lease expiry must compare tick counts of the
// group's own timer (gcs.Group.tickCount), never sampled time — a
// wall-clock lease drifts against the grantor's and breaks deterministic
// replay of the expiry decision.
type lease struct {
	grantedAt time.Time
	bound     time.Duration
}

func (l *lease) valid() bool {
	return time.Since(l.grantedAt) <= l.bound // want detclock "time.Since"
}
