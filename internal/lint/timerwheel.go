package lint

import (
	"fmt"
	"go/ast"
	"path/filepath"
)

// TimerWheel forbids private timer goroutines in the group communication
// layer. The delivery engine runs every group's tick machinery off one
// shared hierarchical timer wheel (wheel.go); a stray time.NewTicker or
// time.AfterFunc reintroduces exactly the per-group timer goroutine the
// wheel exists to eliminate — invisible in the wheel's depth gauge, and a
// goroutine-per-group regression at 10k-group scale. One-shot
// time.NewTimer waits (join retries, the wheel's own sleep) are fine; the
// rule targets the recurring/background forms only. Legitimate exceptions
// carry //lint:ok timerwheel <reason>.
func TimerWheel() *Analyzer {
	return &Analyzer{
		Name:    "timerwheel",
		Doc:     "no private tickers or timer callbacks in gcs; schedule on the shared wheel",
		Applies: pathIn("internal/gcs"),
		Run:     runTimerWheel,
	}
}

// timerwheelAllowFiles are exempt basenames: the wheel implementation is
// where the process's one timer lives.
var timerwheelAllowFiles = map[string]bool{
	"wheel.go": true,
}

// forbidden time package functions: the recurring and callback-spawning
// forms that create standing timer work outside the wheel.
var timerwheelTimeFuncs = map[string]bool{
	"NewTicker": true,
	"Tick":      true,
	"AfterFunc": true,
}

func runTimerWheel(p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Files {
		base := filepath.Base(p.Fset.Position(f.Pos()).Filename)
		if timerwheelAllowFiles[base] {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := p.Info.Uses[id]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
				return true
			}
			if timerwheelTimeFuncs[obj.Name()] {
				diags = append(diags, Diagnostic{
					Rule: "timerwheel",
					Pos:  p.Fset.Position(id.Pos()),
					Msg: fmt.Sprintf("time.%s in gcs code (a private timer bypasses the shared wheel; register a wheel entry instead)",
						obj.Name()),
				})
			}
			return true
		})
	}
	return diags
}
