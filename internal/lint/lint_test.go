package lint

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// The fixture loader is shared across tests: the source importer
// type-checks the standard library once per process, which dominates the
// cost of every load.
var (
	loaderOnce sync.Once
	loaderVal  *Loader
	loaderErr  error
)

func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() { loaderVal, loaderErr = NewLoader(".") })
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	return loaderVal
}

// A want is one expected diagnostic, parsed from a fixture comment of the
// form `// want <rule> "<substring>"` (several pairs may share a comment).
// The expectation is anchored to the comment's line.
type want struct {
	rule    string
	substr  string
	matched bool
}

var wantRE = regexp.MustCompile(`([a-z]+) "([^"]*)"`)

// parseWants collects the expectations of every fixture file, keyed by
// "basename:line".
func parseWants(p *Package) map[string][]*want {
	wants := make(map[string][]*want)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
				for _, m := range wantRE.FindAllStringSubmatch(rest, -1) {
					wants[key] = append(wants[key], &want{rule: m[1], substr: m[2]})
				}
			}
		}
	}
	return wants
}

// runFixture checks one analyzer against its golden fixture package: every
// `// want` expectation must be produced at its line, and nothing else may
// be reported.
func runFixture(t *testing.T, name string, a *Analyzer) {
	t.Helper()
	ld := fixtureLoader(t)
	pkg, err := ld.LoadDir(filepath.Join("testdata", name))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	wants := parseWants(pkg)
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no // want expectations", name)
	}
	for _, d := range Check([]*Package{pkg}, []*Analyzer{a}) {
		key := fmt.Sprintf("%s:%d", filepath.Base(d.Pos.Filename), d.Pos.Line)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.rule == d.Rule && strings.Contains(d.Msg, w.substr) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: missing diagnostic [%s] containing %q", key, w.rule, w.substr)
			}
		}
	}
}

func TestWireSym(t *testing.T)    { runFixture(t, "wiresym", WireSym()) }
func TestWirePool(t *testing.T)   { runFixture(t, "wirepool", WirePool()) }
func TestLockBlock(t *testing.T)  { runFixture(t, "lockblock", LockBlock()) }
func TestDetClock(t *testing.T)   { runFixture(t, "detclock", DetClock()) }
func TestTimerWheel(t *testing.T) { runFixture(t, "timerwheel", TimerWheel()) }
func TestGoOrphan(t *testing.T)   { runFixture(t, "goorphan", GoOrphan()) }
func TestErrDrop(t *testing.T)    { runFixture(t, "errdrop", ErrDrop()) }

// TestDirectiveMalformed checks that broken //lint:ok comments are
// reported even when no analyzer runs: a directive that parses wrong
// silently suppresses nothing, which must be loud.
func TestDirectiveMalformed(t *testing.T) {
	ld := fixtureLoader(t)
	pkg, err := ld.LoadDir(filepath.Join("testdata", "directive"))
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags := Check([]*Package{pkg}, nil)
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 malformed-directive findings: %v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Rule != "directive" || !strings.Contains(d.Msg, "malformed") {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
}

// TestAnalyzersNamed checks rule-subset selection and its error path.
func TestAnalyzersNamed(t *testing.T) {
	all, err := AnalyzersNamed("")
	if err != nil || len(all) != 8 {
		t.Fatalf("AnalyzersNamed(\"\") = %d analyzers, err %v; want 8, nil", len(all), err)
	}
	two, err := AnalyzersNamed("wiresym,errdrop")
	if err != nil || len(two) != 2 {
		t.Fatalf("AnalyzersNamed(subset) = %d analyzers, err %v; want 2, nil", len(two), err)
	}
	if _, err := AnalyzersNamed("nosuchrule"); err == nil {
		t.Fatal("AnalyzersNamed(unknown) succeeded, want error")
	}
}

// TestExpand checks module pattern expansion against the real module tree.
func TestExpand(t *testing.T) {
	ld := fixtureLoader(t)
	paths, err := ld.Expand([]string{"./..."})
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	seen := make(map[string]bool, len(paths))
	for _, p := range paths {
		seen[p] = true
		if strings.Contains(p, "testdata") {
			t.Errorf("Expand(./...) includes testdata package %s", p)
		}
	}
	for _, need := range []string{"newtop/internal/lint", "newtop/internal/gcs", "newtop/internal/wire"} {
		if !seen[need] {
			t.Errorf("Expand(./...) missing %s (got %d packages)", need, len(paths))
		}
	}
}
