package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// ErrDrop flags discarded error returns on the send paths: calls to
// transport.Endpoint.Send and gcs.Group.Multicast whose error result is
// thrown away, either by a bare expression statement or by assigning
// every result to the blank identifier. The
// protocol tolerates lost messages (the resend machinery recovers), so
// many of these drops are deliberate — but each one must say so with a
// //lint:ok errdrop annotation, because a *new* silent drop is exactly
// how a "replies sometimes vanish" bug enters a reliability layer.
func ErrDrop() *Analyzer {
	return &Analyzer{
		Name:    "errdrop",
		Doc:     "send-path errors may only be dropped with an annotated reason",
		Applies: pathIn("internal/gcs", "internal/core", "internal/transport", "internal/orb"),
		Run:     runErrDrop,
	}
}

func runErrDrop(p *Package) []Diagnostic {
	var diags []Diagnostic
	flag := func(call *ast.CallExpr, how string) {
		fn := calleeOf(p.Info, call)
		name := sendPathCallee(fn)
		if name == "" {
			return
		}
		diags = append(diags, Diagnostic{
			Rule: "errdrop",
			Pos:  p.Fset.Position(call.Pos()),
			Msg:  fmt.Sprintf("error from %s %s; handle it or annotate the deliberate best-effort drop", name, how),
		})
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				if call, ok := ast.Unparen(st.X).(*ast.CallExpr); ok {
					flag(call, "ignored")
				}
			case *ast.AssignStmt:
				// `_ = x.Send(...)` (or `_, _ = ...`): every destination
				// blank and a single call on the right.
				if len(st.Rhs) != 1 {
					return true
				}
				call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr)
				if !ok {
					return true
				}
				for _, lhs := range st.Lhs {
					if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
						return true
					}
				}
				flag(call, "discarded with _")
			case *ast.GoStmt:
				flag(st.Call, "lost by go statement")
			case *ast.DeferStmt:
				flag(st.Call, "lost by defer")
			}
			return true
		})
	}
	return diags
}

// sendPathCallee names fn when it is a send-path function returning an
// error, "" otherwise.
func sendPathCallee(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return ""
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	if !isErrorType(last) {
		return ""
	}
	rt := recvTypeOf(fn)
	if rt == nil {
		return ""
	}
	rpkg := pkgPathOf(rt)
	rname := ""
	if n := namedOrigin(rt); n != nil {
		rname = n.Obj().Name()
	}
	switch {
	case hasPathSuffix(rpkg, "internal/transport") && fn.Name() == "Send":
		return "(" + rname + ").Send"
	case hasPathSuffix(rpkg, "internal/gcs") && rname == "Group" && fn.Name() == "Multicast":
		return "(gcs.Group).Multicast"
	}
	return ""
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj() != nil && n.Obj().Pkg() == nil && n.Obj().Name() == "error"
}
