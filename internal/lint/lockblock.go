package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockBlock flags operations that can block while a sync.Mutex/RWMutex
// may be held: channel sends and receives, selects without a default,
// ranging over a channel, time.Sleep, sync.Cond/WaitGroup waits, network
// I/O (transport.Endpoint.Send, package net), the blocking gcs entry
// points (Group.Multicast/Leave, Node.Join/Close) and the blocking core
// invocation surface (Binding/Proxy/G2G Call/Read/Invoke/InvokeCall wait for
// replies, InvokeAsync blocks on a full call window, Call.Await parks
// until the future completes). Every gcs event-loop method runs under the
// group mutex; a blocking call there stalls the whole protocol state
// machine (and can deadlock against the transport pump feeding it).
//
// Lock state is tracked two ways, matching the codebase's conventions:
// explicit x.Lock()/x.Unlock() pairs are followed linearly through a
// function body (defer x.Unlock() holds to the end), and functions whose
// name ends in "Locked" are treated as entered with the mutex held. The
// under-lock property propagates through same-package static calls (a
// helper called from a locked region inherits it), but not through `go`
// statements, deferred calls, or function literals that are not invoked
// immediately.
func LockBlock() *Analyzer {
	return &Analyzer{
		Name:    "lockblock",
		Doc:     "no blocking operations while a mutex is held in event-loop code",
		Applies: pathIn("internal/gcs", "internal/core"),
		Run:     runLockBlock,
	}
}

// blockOp is one potentially blocking operation found in a function body.
type blockOp struct {
	pos  token.Pos
	what string
	held bool   // a mutex was locally held at this point
	lock string // the locally held lock's expression, if held
}

// fnFacts is the per-function summary of pass 1. Call sites and their
// resolution live in the shared call graph; the walker contributes only
// what the graph cannot know — the lock state at each site.
type fnFacts struct {
	decl   *ast.FuncDecl
	obj    *types.Func
	byName bool // name ends in "Locked": entered with the mutex held
	blocks []blockOp
	heldAt map[*ast.CallExpr]bool // lock state at each visited call site
}

func runLockBlock(p *Package) []Diagnostic {
	cg := BuildCallGraph([]*Package{p})
	facts := make(map[*types.Func]*fnFacts, len(cg.Nodes()))
	for _, node := range cg.Nodes() {
		ff := &fnFacts{
			decl:   node.Decl,
			obj:    node.Fn,
			byName: strings.HasSuffix(node.Decl.Name.Name, "Locked"),
			heldAt: map[*ast.CallExpr]bool{},
		}
		w := &lockWalker{p: p, ff: ff, held: map[string]bool{}}
		w.block(node.Decl.Body)
		facts[node.Fn] = ff
	}

	// Propagate "may run with a mutex held" through the call graph's
	// static same-package edges: seeded by *Locked naming and by call
	// sites inside locked regions, then closed transitively (a function
	// that may run locked passes the property to everything it calls).
	// Go statements, deferred calls and function literals that escape the
	// call do not inherit the caller's locks, so those edges are skipped.
	underLock := make(map[*types.Func]bool)
	via := make(map[*types.Func]string)
	for _, node := range cg.Nodes() {
		if facts[node.Fn].byName {
			underLock[node.Fn] = true
			via[node.Fn] = "its *Locked name"
		}
	}
	for changed := true; changed; {
		changed = false
		for _, node := range cg.Nodes() {
			ff := facts[node.Fn]
			callerLocked := underLock[node.Fn]
			for _, e := range node.Out {
				if e.Go || e.Defer || e.InLit || e.Callee == nil || e.Callee.Pkg() != p.Types {
					continue
				}
				if _, known := facts[e.Callee]; !known {
					continue
				}
				if (ff.heldAt[e.Call] || callerLocked) && !underLock[e.Callee] {
					underLock[e.Callee] = true
					via[e.Callee] = node.Fn.Name()
					changed = true
				}
			}
		}
	}

	var diags []Diagnostic
	for _, node := range cg.Nodes() {
		ff := facts[node.Fn]
		for _, b := range ff.blocks {
			switch {
			case b.held:
				diags = append(diags, Diagnostic{
					Rule: "lockblock",
					Pos:  p.Fset.Position(b.pos),
					Msg:  fmt.Sprintf("%s while %s is held", b.what, b.lock),
				})
			case underLock[ff.obj]:
				diags = append(diags, Diagnostic{
					Rule: "lockblock",
					Pos:  p.Fset.Position(b.pos),
					Msg:  fmt.Sprintf("%s in %s, which can run with a mutex held (via %s)", b.what, ff.obj.Name(), via[ff.obj]),
				})
			}
		}
	}
	return diags
}

// lockWalker scans one function body in source order, tracking which
// mutexes are held. The scan is deliberately linear: a branch that
// unlocks-and-returns clears the state for the statements after it, which
// can miss a fall-through path (an acceptable false negative) but never
// invents a lock that was already released (no false positives from the
// common unlock-early idiom).
type lockWalker struct {
	p    *Package
	ff   *fnFacts
	held map[string]bool
}

func (w *lockWalker) heldNow() (bool, string) {
	if w.ff.byName {
		return true, "the caller's mutex (*Locked convention)"
	}
	for k := range w.held {
		return true, k
	}
	return false, ""
}

func (w *lockWalker) add(pos token.Pos, what string) {
	held, lock := w.heldNow()
	w.ff.blocks = append(w.ff.blocks, blockOp{pos: pos, what: what, held: held, lock: lock})
}

func (w *lockWalker) block(b *ast.BlockStmt) {
	for _, s := range b.List {
		w.stmt(s)
	}
}

func (w *lockWalker) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case nil:
	case *ast.BlockStmt:
		w.block(st)
	case *ast.ExprStmt:
		w.expr(st.X)
	case *ast.SendStmt:
		if held, _ := w.heldNow(); held {
			w.add(st.Arrow, "channel send")
		}
		w.expr(st.Chan)
		w.expr(st.Value)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			w.expr(e)
		}
		for _, e := range st.Lhs {
			w.expr(e)
		}
	case *ast.IfStmt:
		w.stmt(st.Init)
		w.expr(st.Cond)
		w.block(st.Body)
		w.stmt(st.Else)
	case *ast.ForStmt:
		w.stmt(st.Init)
		if st.Cond != nil {
			w.expr(st.Cond)
		}
		w.block(st.Body)
		w.stmt(st.Post)
	case *ast.RangeStmt:
		if tv, ok := w.p.Info.Types[st.X]; ok && isChan(tv.Type) {
			if held, _ := w.heldNow(); held {
				w.add(st.For, "range over channel")
			}
		}
		w.expr(st.X)
		w.block(st.Body)
	case *ast.SwitchStmt:
		w.stmt(st.Init)
		if st.Tag != nil {
			w.expr(st.Tag)
		}
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				w.expr(e)
			}
			for _, bs := range cc.Body {
				w.stmt(bs)
			}
		}
	case *ast.TypeSwitchStmt:
		w.stmt(st.Init)
		w.stmt(st.Assign)
		for _, c := range st.Body.List {
			cc := c.(*ast.CaseClause)
			for _, bs := range cc.Body {
				w.stmt(bs)
			}
		}
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			if held, _ := w.heldNow(); held {
				w.add(st.Select, "select without default")
			}
		}
		// Comm statements are the select's own (possibly non-blocking)
		// channel operations; only the clause bodies are scanned.
		for _, c := range st.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				for _, bs := range cc.Body {
					w.stmt(bs)
				}
			}
		}
	case *ast.GoStmt:
		// The spawned goroutine does not inherit the caller's locks; only
		// argument evaluation happens here. The call is also not recorded
		// as a same-package call site for lock propagation.
		for _, a := range st.Call.Args {
			w.expr(a)
		}
	case *ast.DeferStmt:
		// Deferred calls run at return time, where lock state is governed
		// by defer ordering; skipped to stay conservative (the deferred
		// x.Unlock() itself is handled in expr/call classification).
		if w.isUnlock(st.Call) {
			// defer x.Unlock(): the lock is held until function return —
			// keep it in the held set for the rest of the scan.
			return
		}
		for _, a := range st.Call.Args {
			w.expr(a)
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			w.expr(e)
		}
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		w.stmt(st.Stmt)
	case *ast.IncDecStmt:
		w.expr(st.X)
	case *ast.BranchStmt, *ast.EmptyStmt:
	}
}

func (w *lockWalker) expr(e ast.Expr) {
	switch ex := e.(type) {
	case nil:
	case *ast.CallExpr:
		w.call(ex)
	case *ast.UnaryExpr:
		if ex.Op == token.ARROW {
			if held, _ := w.heldNow(); held {
				w.add(ex.OpPos, "channel receive")
			}
		}
		w.expr(ex.X)
	case *ast.BinaryExpr:
		w.expr(ex.X)
		w.expr(ex.Y)
	case *ast.ParenExpr:
		w.expr(ex.X)
	case *ast.SelectorExpr:
		w.expr(ex.X)
	case *ast.IndexExpr:
		w.expr(ex.X)
		w.expr(ex.Index)
	case *ast.SliceExpr:
		w.expr(ex.X)
		w.expr(ex.Low)
		w.expr(ex.High)
		w.expr(ex.Max)
	case *ast.StarExpr:
		w.expr(ex.X)
	case *ast.TypeAssertExpr:
		w.expr(ex.X)
	case *ast.CompositeLit:
		for _, el := range ex.Elts {
			w.expr(el)
		}
	case *ast.KeyValueExpr:
		w.expr(ex.Key)
		w.expr(ex.Value)
	case *ast.FuncLit:
		// Not executed here; scanned only when immediately invoked (see
		// call).
	}
}

// call classifies one call expression: lock transition, blocking
// operation, same-package call site, or plain recursion into arguments.
func (w *lockWalker) call(call *ast.CallExpr) {
	// Immediately-invoked function literal: runs synchronously under the
	// current lock state.
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		for _, a := range call.Args {
			w.expr(a)
		}
		w.block(lit.Body)
		return
	}
	for _, a := range call.Args {
		w.expr(a)
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		w.expr(sel.X)
	}

	// Record the lock state at this site for the call-graph propagation
	// pass — including sites calleeOf cannot resolve (function values); the
	// graph may resolve them through its same-package value bindings.
	held, _ := w.heldNow()
	w.ff.heldAt[call] = held

	fn := calleeOf(w.p.Info, call)
	if fn == nil {
		return
	}
	if w.lockTransition(call, fn) {
		return
	}
	if what := blockingCallee(fn); what != "" {
		w.add(call.Pos(), what)
	}
}

// lockTransition updates the held set for x.Lock()/x.Unlock() calls on
// sync mutexes and reports whether the call was one.
func (w *lockWalker) lockTransition(call *ast.CallExpr, fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	key := types.ExprString(sel.X)
	switch fn.Name() {
	case "Lock", "RLock":
		w.held[key] = true
		return true
	case "Unlock", "RUnlock":
		delete(w.held, key)
		return true
	case "TryLock", "TryRLock":
		return true
	}
	return false
}

// isUnlock reports whether a deferred call is x.Unlock()/x.RUnlock().
func (w *lockWalker) isUnlock(call *ast.CallExpr) bool {
	fn := calleeOf(w.p.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	return fn.Name() == "Unlock" || fn.Name() == "RUnlock"
}

// blockingCallee classifies callees that block the calling goroutine.
func blockingCallee(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	switch pkg {
	case "time":
		if fn.Name() == "Sleep" {
			return "time.Sleep"
		}
	case "sync":
		if fn.Name() == "Wait" {
			// sync.Cond.Wait and sync.WaitGroup.Wait both park the caller.
			if rt := recvTypeOf(fn); rt != nil {
				return "sync." + namedOrigin(rt).Obj().Name() + ".Wait"
			}
			return "sync wait"
		}
	case "net":
		return "net." + fn.Name() + " (network I/O)"
	}
	rt := recvTypeOf(fn)
	if rt == nil {
		return ""
	}
	rpkg := pkgPathOf(rt)
	if hasPathSuffix(rpkg, "internal/transport") && fn.Name() == "Send" {
		return "transport send (network I/O)"
	}
	if hasPathSuffix(rpkg, "internal/gcs") {
		n := namedOrigin(rt).Obj().Name()
		switch {
		case n == "Group" && (fn.Name() == "Multicast" || fn.Name() == "Leave"):
			return "gcs.Group." + fn.Name() + " (blocks on view change/teardown)"
		case n == "Node" && (fn.Name() == "Join" || fn.Name() == "Close"):
			return "gcs.Node." + fn.Name() + " (blocks on membership/teardown)"
		}
	}
	if hasPathSuffix(rpkg, "internal/core") {
		n := namedOrigin(rt).Obj().Name()
		switch {
		case n == "Call" && fn.Name() == "Await":
			return "core.Call.Await (parks until the future completes)"
		case n == "Binding" || n == "Proxy" || n == "G2G":
			switch fn.Name() {
			case "Call", "Invoke", "InvokeCall":
				return "core." + n + "." + fn.Name() + " (blocks until replies arrive)"
			case "Read":
				return "core." + n + ".Read (blocks until a replica answers)"
			case "InvokeAsync":
				// The async launch still blocks when the outstanding-call
				// window is full (backpressure by design).
				return "core." + n + ".InvokeAsync (blocks on a full call window)"
			}
		}
	}
	return ""
}
