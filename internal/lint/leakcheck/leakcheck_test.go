package leakcheck

import (
	"strings"
	"testing"
	"time"
)

// recorder captures Errorf calls from a cleanup under test.
type recorder struct {
	testing.TB
	errs     []string
	cleanups []func()
}

func (r *recorder) Helper() {}

func (r *recorder) Errorf(format string, args ...any) {
	r.errs = append(r.errs, format)
	_ = args
}

func (r *recorder) Cleanup(f func()) { r.cleanups = append(r.cleanups, f) }

func (r *recorder) runCleanups() {
	for i := len(r.cleanups) - 1; i >= 0; i-- {
		r.cleanups[i]()
	}
}

func TestCheckPassesWhenGoroutinesDrain(t *testing.T) {
	r := &recorder{TB: t}
	Check(r)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		<-stop
	}()
	close(stop)
	<-done
	r.runCleanups()
	if len(r.errs) != 0 {
		t.Fatalf("drained goroutine reported as leaked: %v", r.errs)
	}
}

func TestCheckReportsALeak(t *testing.T) {
	r := &recorder{TB: t}
	Check(r)
	stop := make(chan struct{})
	go leakyPump(stop)
	r.runCleanups() // pump still parked on stop: must be reported
	close(stop)
	if len(r.errs) == 0 {
		t.Fatal("parked module goroutine not reported as leaked")
	}
	for _, e := range r.errs {
		if !strings.Contains(e, "leaked goroutine") {
			t.Errorf("unexpected error format %q", e)
		}
	}
}

// leakyPump parks on stop from a frame inside the module, so the leak
// filter (which keys on newtop/ frames) sees it.
func leakyPump(stop <-chan struct{}) {
	select {
	case <-stop:
	case <-time.After(time.Minute):
	}
}
