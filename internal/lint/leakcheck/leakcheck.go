// Package leakcheck verifies that a test leaves no goroutines of ours
// behind. It is the runtime twin of the goorphan lint rule: the analyzer
// proves every pump has a stop signal, this helper proves Stop/Close
// actually pulled it.
//
// Usage, first line of a lifecycle test:
//
//	leakcheck.Check(t)
//
// Check snapshots the running goroutines and registers a cleanup that
// fails the test if, after a grace period, goroutines started during the
// test are still running module code. Only goroutines with a newtop/
// frame count: runtime, testing and timer internals come and go on their
// own schedule and are not ours to reap.
package leakcheck

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// grace is how long a cleanup waits for goroutines to drain before
// declaring them leaked. Teardown is asynchronous in places (pumps notice
// a closed channel on their next wakeup), so the check polls instead of
// sampling once.
const grace = 2 * time.Second

// modulePrefix marks a stack frame as ours.
const modulePrefix = "newtop/"

// Check must be called before the test starts the code under test.
func Check(t testing.TB) {
	t.Helper()
	base := goroutineIDs()
	t.Cleanup(func() {
		deadline := time.Now().Add(grace)
		var leaked []string
		for {
			leaked = leakedSince(base)
			if len(leaked) == 0 || time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		for _, s := range leaked {
			t.Errorf("leaked goroutine:\n%s", s)
		}
	})
}

// snapshot returns the stacks of all current goroutines.
func snapshot() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			return strings.Split(string(buf[:n]), "\n\n")
		}
		buf = make([]byte, 2*len(buf))
	}
}

// goroutineID extracts the numeric ID from a stack's first line,
// "goroutine 123 [running]:".
func goroutineID(stack string) string {
	header, _, _ := strings.Cut(stack, "\n")
	fields := strings.Fields(header)
	if len(fields) >= 2 && fields[0] == "goroutine" {
		return fields[1]
	}
	return ""
}

func goroutineIDs() map[string]bool {
	ids := make(map[string]bool)
	for _, s := range snapshot() {
		if id := goroutineID(s); id != "" {
			ids[id] = true
		}
	}
	return ids
}

// leakedSince lists goroutines that did not exist at baseline and are
// still running module code.
func leakedSince(base map[string]bool) []string {
	var leaked []string
	for _, s := range snapshot() {
		id := goroutineID(s)
		if id == "" || base[id] {
			continue
		}
		if !strings.Contains(s, modulePrefix) {
			continue
		}
		if strings.Contains(s, "leakcheck.leakedSince") {
			continue // the goroutine running this very check
		}
		leaked = append(leaked, s)
	}
	return leaked
}
