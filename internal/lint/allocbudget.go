package lint

// This file is the checked-in static allocation-budget manifest the
// allocflow analyzer enforces (ci.sh "static alloc budgets" stage). Each
// entry names one hot-path entry point and the maximum number of
// unsuppressed allocation sites that may be statically reachable from it.
//
// The numbers are ceilings on *sites in the source*, not allocations per
// operation: static analysis walks every branch, including cold ones
// (view installation, flush, resend), so a budget here is always well
// above the runtime AllocGuard budgets — the cross-check test in
// internal/gcs asserts exactly that ordering. What the manifest buys is
// regression detection: a new composite literal, boxing conversion or
// growing append anywhere in an entry point's call closure pushes the
// count over its ceiling and fails CI with the offending sites listed.
//
// Raising a budget is allowed but must be deliberate: prefer annotating
// the specific cold-path site with //lint:ok allocflow <reason>, which
// discounts it from every entry, and keep the ceilings tight around the
// counts the current code produces.

// AllocBudget is one entry-point ceiling.
type AllocBudget struct {
	Entry string // pkg.Func, pkg.(*T).Method or pkg.T.Method
	Max   int    // maximum unsuppressed reachable allocation sites
	Note  string // which hot-path stage this entry guards
}

// DefaultAllocBudgets returns the manifest for the real module.
func DefaultAllocBudgets() []AllocBudget {
	return []AllocBudget{
		{Entry: "newtop/internal/gcs.(*Group).Multicast", Max: 40, Note: "application send path: batch, emit, encode, transport handoff"},
		{Entry: "newtop/internal/gcs.(*Node).dispatch", Max: 120, Note: "ingest path: decode, accept, order, deliver tail"},
		{Entry: "newtop/internal/gcs.encodeMessage", Max: 8, Note: "wire encode of one protocol envelope"},
		{Entry: "newtop/internal/gcs.decodeMessage", Max: 28, Note: "wire decode of one protocol envelope"},
		{Entry: "newtop/internal/transport/tcpnet.(*Endpoint).Send", Max: 48, Note: "transport enqueue onto the per-peer pipe"},
		{Entry: "newtop/internal/transport/tcpnet.(*pipe).run", Max: 38, Note: "writer pipeline: coalesce, frame, flush"},
		{Entry: "newtop/internal/transport/tcpnet.(*Endpoint).readLoop", Max: 22, Note: "reader: frame split, arena carve, inbound handoff"},
		{Entry: "newtop/internal/obs/flight.(*Recorder).Record", Max: 3, Note: "flight-recorder event append"},
		{Entry: "newtop/internal/core.(*Server).serveReadLocal", Max: 20, Note: "leased local read: lease check, session floor, handler run, reply"},
		{Entry: "newtop/internal/shard.(*Ring).OwnerBytes", Max: 0, Note: "sharded routing: per-invocation key->shard lookup must not allocate"},
	}
}
