package lint

import (
	"testing"
)

// TestAllocFlow runs the golden fixture with the entry point budgeted at
// zero, so every classified site in Hot's closure must be reported — and
// none of Cold's.
func TestAllocFlow(t *testing.T) {
	runFixture(t, "allocflow", allocFlowWith([]AllocBudget{
		{Entry: "testdata/allocflow.Hot", Max: 0},
	}))
}

// TestAllocFlowBudgetsTight loads the real module and checks the manifest
// two ways: every entry point resolves (the analyzer would report a
// missing one, but this keeps the failure close to the manifest), and no
// budget is slack by more than a small headroom — a ceiling far above the
// actual count would let a stream of regressions in before CI notices.
func TestAllocFlowBudgetsTight(t *testing.T) {
	ld := fixtureLoader(t)
	paths, err := ld.Expand([]string{"./..."})
	if err != nil {
		t.Fatalf("Expand: %v", err)
	}
	var pkgs []*Package
	for _, path := range paths {
		p, err := ld.Load(path)
		if err != nil {
			t.Fatalf("Load(%s): %v", path, err)
		}
		pkgs = append(pkgs, p)
	}
	counts, err := AllocFlowCounts(pkgs)
	if err != nil {
		t.Fatal(err)
	}
	const headroom = 15
	for _, b := range DefaultAllocBudgets() {
		got, ok := counts[b.Entry]
		if !ok {
			t.Errorf("manifest entry %s produced no count", b.Entry)
			continue
		}
		t.Logf("%-55s sites=%3d budget=%3d", b.Entry, got, b.Max)
		if got > b.Max {
			t.Errorf("%s: %d sites exceed budget %d", b.Entry, got, b.Max)
		}
		if b.Max-got > headroom {
			t.Errorf("%s: budget %d is slack (actual %d, headroom limit %d) — tighten the manifest", b.Entry, b.Max, got, headroom)
		}
	}
}
