// Package lint is newtop's protocol-aware static analysis engine. The Go
// compiler checks types; it cannot check the invariants the NewTop
// correctness story actually rests on — wire envelopes that encode and
// decode symmetrically, event-loop code that never blocks while a group
// mutex is held, protocol decisions that stay deterministic (no wall
// clock, no math/rand) so netsim runs replay, goroutines that have a stop
// signal, and send-path errors that are dropped only on purpose. This
// package turns each of those invariants into an analyzer that CI runs
// over the whole module (see cmd/newtop-lint).
//
// The engine is stdlib-only: go/parser + go/types + go/importer, no
// golang.org/x/tools dependency. Packages are loaded from source (see
// load.go), analyzers receive a fully type-checked *Package, and
// deliberate violations are suppressed inline with
//
//	//lint:ok <rule> <reason>
//
// on (or immediately above) the offending line. A directive must name the
// rule and give a non-empty reason; a malformed directive is itself a
// diagnostic, so the escape hatch cannot rot silently.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding, anchored to a source position.
type Diagnostic struct {
	Rule string
	Pos  token.Position
	Msg  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Rule, d.Msg)
}

// Package is one type-checked package handed to analyzers.
type Package struct {
	Path  string // import path ("newtop/internal/gcs")
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Analyzer is one protocol-invariant check. Per-package analyzers set Run;
// module-level analyzers (allocflow, which walks an interprocedural call
// graph) set RunModule and receive every loaded package at once plus the
// suppression table, so suppressed sites can be discounted before any
// budget arithmetic instead of filtered afterwards.
type Analyzer struct {
	Name string
	Doc  string
	// Applies gates which module packages the analyzer runs on when
	// driving from cmd/newtop-lint; Check itself runs every analyzer it is
	// given (fixture tests rely on that).
	Applies   func(importPath string) bool
	Run       func(p *Package) []Diagnostic
	RunModule func(pkgs []*Package, sup *Suppressor) []Diagnostic
}

// internalOnly scopes an analyzer to the module's internal packages (the
// protocol stack); cmd and examples are demo surface.
func internalOnly(path string) bool { return strings.Contains(path, "/internal/") }

// pathIn reports whether path is one of the named module packages.
func pathIn(paths ...string) func(string) bool {
	return func(p string) bool {
		for _, q := range paths {
			if p == q || strings.HasSuffix(p, q) {
				return true
			}
		}
		return false
	}
}

// Analyzers returns the full newtop-lint suite.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		WireSym(),
		WirePool(),
		LockBlock(),
		DetClock(),
		TimerWheel(),
		GoOrphan(),
		ErrDrop(),
		AllocFlow(),
	}
}

// AnalyzersNamed resolves a comma-separated rule list ("wiresym,errdrop").
func AnalyzersNamed(names string) ([]*Analyzer, error) {
	all := Analyzers()
	if names == "" {
		return all, nil
	}
	byName := make(map[string]*Analyzer, len(all))
	for _, a := range all {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		a, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown rule %q (have %s)", n, ruleNames(all))
		}
		out = append(out, a)
	}
	return out, nil
}

func ruleNames(as []*Analyzer) string {
	names := make([]string, len(as))
	for i, a := range as {
		names[i] = a.Name
	}
	return strings.Join(names, ", ")
}

// directive is one parsed //lint:ok annotation.
type directive struct {
	rule   string
	reason string
	file   string
	line   int
	// own reports a directive on a line of its own (it then covers the
	// next line); inline directives cover their own line.
	own bool
}

const directivePrefix = "//lint:ok"

// collectDirectives parses every //lint:ok comment in the package and
// reports malformed ones as diagnostics under the "directive" rule.
func collectDirectives(p *Package) ([]directive, []Diagnostic) {
	var ds []directive
	var diags []Diagnostic
	for _, f := range p.Files {
		// A comment group is "own-line" when no code shares its line.
		codeLines := make(map[int]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n.(type) {
			case nil, *ast.Comment, *ast.CommentGroup, *ast.File:
				return true
			default:
				codeLines[p.Fset.Position(n.Pos()).Line] = true
				return true
			}
		})
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, directivePrefix))
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					diags = append(diags, Diagnostic{
						Rule: "directive",
						Pos:  pos,
						Msg:  "malformed //lint:ok directive: want \"//lint:ok <rule> <reason>\"",
					})
					continue
				}
				ds = append(ds, directive{
					rule:   fields[0],
					reason: strings.Join(fields[1:], " "),
					file:   pos.Filename,
					line:   pos.Line,
					own:    !codeLines[pos.Line],
				})
			}
		}
	}
	return ds, diags
}

// Suppressor holds every //lint:ok directive collected from the checked
// packages and records which of them actually suppressed something, so a
// stale directive — one whose rule ran but matched no finding — can be
// reported instead of rotting silently.
type Suppressor struct {
	ds []*trackedDirective
}

type trackedDirective struct {
	directive
	pkgPath string
	used    bool
}

func newSuppressor(pkgs []*Package) (*Suppressor, []Diagnostic) {
	sup := &Suppressor{}
	var bad []Diagnostic
	for _, p := range pkgs {
		ds, diags := collectDirectives(p)
		bad = append(bad, diags...)
		for _, d := range ds {
			sup.ds = append(sup.ds, &trackedDirective{directive: d, pkgPath: p.Path})
		}
	}
	return sup, bad
}

// Suppressed reports whether a directive covers (rule, pos): same rule,
// same file, and either inline on the position's line or alone on the line
// immediately above it. A match marks the directive used.
func (s *Suppressor) Suppressed(rule string, pos token.Position) bool {
	hit := false
	for _, dir := range s.ds {
		if dir.rule != rule || dir.file != pos.Filename {
			continue
		}
		if dir.line == pos.Line || (dir.own && dir.line == pos.Line-1) {
			dir.used = true
			hit = true
		}
	}
	return hit
}

// stale returns one diagnostic per unused directive whose rule actually
// ran on the directive's package in this invocation (ran maps package path
// to the rule names executed there). A directive for a rule that was not
// selected, or that is gated off the package, is not stale — it may be
// doing its job on a fuller run.
func (s *Suppressor) stale(ran map[string]map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, dir := range s.ds {
		if dir.used || !ran[dir.pkgPath][dir.rule] {
			continue
		}
		out = append(out, Diagnostic{
			Rule: "directive",
			Pos:  token.Position{Filename: dir.file, Line: dir.line, Column: 1},
			Msg:  fmt.Sprintf("stale //lint:ok %s directive: it suppresses nothing", dir.rule),
		})
	}
	return out
}

// Check runs every analyzer over every package, applies //lint:ok
// suppression, and returns the surviving diagnostics in position order.
// Scoping via Analyzer.Applies and stale-directive detection are
// CheckModule's concern (cmd/newtop-lint goes through it; fixture tests
// call Check and bypass both).
func Check(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	return check(pkgs, analyzers, false, false)
}

// CheckModule is the cmd/newtop-lint entry point: Applies gating is
// honoured, module-level analyzers run once over the whole package set,
// and //lint:ok directives that suppressed nothing are reported.
func CheckModule(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	return check(pkgs, analyzers, true, true)
}

func check(pkgs []*Package, analyzers []*Analyzer, gate, staleCheck bool) []Diagnostic {
	sup, out := newSuppressor(pkgs)
	ran := make(map[string]map[string]bool, len(pkgs))
	mark := func(p *Package, rule string) {
		if ran[p.Path] == nil {
			ran[p.Path] = make(map[string]bool)
		}
		ran[p.Path][rule] = true
	}
	for _, p := range pkgs {
		for _, a := range analyzers {
			if a.Run == nil || (gate && a.Applies != nil && !a.Applies(p.Path)) {
				continue
			}
			mark(p, a.Name)
			for _, d := range a.Run(p) {
				if !sup.Suppressed(d.Rule, d.Pos) {
					out = append(out, d)
				}
			}
		}
	}
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		// A module analyzer sees every package, so its directives are
		// checkable everywhere.
		for _, p := range pkgs {
			mark(p, a.Name)
		}
		for _, d := range a.RunModule(pkgs, sup) {
			if !sup.Suppressed(d.Rule, d.Pos) {
				out = append(out, d)
			}
		}
	}
	if staleCheck {
		out = append(out, sup.stale(ran)...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Rule < b.Rule
	})
	return out
}

// --- shared type helpers used by several analyzers ---

// namedOrigin unwraps pointers and aliases down to a *types.Named, or nil.
func namedOrigin(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(u)
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// isNamedType reports whether t (possibly behind pointers) is the named
// type pkgSuffix.name, matching the package by import-path suffix so the
// check works for both "newtop/internal/wire" and fixture re-exports.
func isNamedType(t types.Type, pkgSuffix, name string) bool {
	n := namedOrigin(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == name && hasPathSuffix(n.Obj().Pkg().Path(), pkgSuffix)
}

// pkgPathOf returns the defining package path of t's named form ("" when
// unnamed or universe).
func pkgPathOf(t types.Type) string {
	n := namedOrigin(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return ""
	}
	return n.Obj().Pkg().Path()
}

// hasPathSuffix matches an import path against a suffix on path-segment
// boundaries ("internal/wire" matches "newtop/internal/wire" but not
// "newtop/internal/rewire").
func hasPathSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix) ||
		(strings.HasSuffix(path, suffix) && strings.HasSuffix(strings.TrimSuffix(path, suffix), "/"))
}

// calleeOf resolves the called function object of a call expression, or
// nil for dynamic calls (function values, type conversions, builtins).
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Package-qualified call (time.Sleep): the Sel ident resolves
		// directly.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// recvTypeOf returns the receiver type of a method object, or nil.
func recvTypeOf(fn *types.Func) types.Type {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	return sig.Recv().Type()
}

// isChan reports whether t's core type is a channel.
func isChan(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}
