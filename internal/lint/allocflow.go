package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// AllocFlow is the interprocedural hot-path allocation analyzer. It walks
// every function reachable — over the static call graph — from the entry
// points declared in the allocation-budget manifest (allocbudget.go) and
// classifies each potential heap-allocation site with a reason: escaping
// composite literals and &T{}, append without capacity evidence, map
// creation and growth, closure captures, interface boxing at call sites
// (which is how fmt and error wrapping allocate), string↔[]byte
// conversions, and calls that leave the analyzed set (attributed, never
// silently ignored — a call into the standard library may allocate
// arbitrarily, so it counts unless it is on the short known-clean list).
//
// A site inside a budgeted entry point's reach is not by itself a
// diagnostic: hot paths are allowed a checked-in number of sites per
// entry. Only when the unsuppressed site count exceeds the entry's budget
// does the analyzer report — one summary at the entry point and one
// diagnostic per counted site, so the regression is attributable.
// Deliberate cold-path sites are discounted with
//
//	//lint:ok allocflow <reason>
//
// which removes the site from every entry's count.
func AllocFlow() *Analyzer { return allocFlowWith(DefaultAllocBudgets()) }

// allocFlowWith builds the analyzer against an explicit manifest (fixture
// tests substitute their own entry points).
func allocFlowWith(budgets []AllocBudget) *Analyzer {
	return &Analyzer{
		Name: "allocflow",
		Doc:  "static per-entry-point allocation budgets over the hot-path call graph",
		RunModule: func(pkgs []*Package, sup *Suppressor) []Diagnostic {
			return runAllocFlow(pkgs, sup, budgets)
		},
	}
}

// allocSite is one classified potential heap allocation.
type allocSite struct {
	pos    token.Position
	reason string
}

func runAllocFlow(pkgs []*Package, sup *Suppressor, budgets []AllocBudget) []Diagnostic {
	cg := BuildCallGraph(pkgs)
	inSet := make(map[*types.Package]bool, len(pkgs))
	for _, p := range pkgs {
		inSet[p.Types] = true
	}
	sites := make(map[*types.Func][]allocSite)
	siteList := func(fn *types.Func) []allocSite {
		if s, ok := sites[fn]; ok {
			return s
		}
		node := cg.Node(fn)
		if node == nil {
			return nil
		}
		s := classifyAllocs(node, cg, inSet)
		sites[fn] = s
		return s
	}

	var diags []Diagnostic
	for _, b := range budgets {
		entry := FuncNamed(pkgs, b.Entry)
		if entry == nil {
			diags = append(diags, Diagnostic{
				Rule: "allocflow",
				Pos:  token.Position{Filename: "allocbudget.go"},
				Msg:  fmt.Sprintf("entry point %q from the budget manifest was not found in the analyzed packages", b.Entry),
			})
			continue
		}
		reach := cg.Reachable(entry)
		var counted []allocSite
		for _, node := range cg.Nodes() {
			if !reach[node.Fn] {
				continue
			}
			for _, s := range siteList(node.Fn) {
				if !sup.Suppressed("allocflow", s.pos) {
					counted = append(counted, s)
				}
			}
		}
		if len(counted) <= b.Max {
			continue
		}
		entryPos := token.Position{Filename: "allocbudget.go"}
		if node := cg.Node(entry); node != nil {
			entryPos = node.Pkg.Fset.Position(node.Decl.Pos())
		}
		diags = append(diags, Diagnostic{
			Rule: "allocflow",
			Pos:  entryPos,
			Msg: fmt.Sprintf("%d allocation sites reachable from %s exceed the budget of %d (raise the manifest only with a reason, or fix the new sites below)",
				len(counted), b.Entry, b.Max),
		})
		for _, s := range counted {
			diags = append(diags, Diagnostic{
				Rule: "allocflow",
				Pos:  s.pos,
				Msg:  fmt.Sprintf("allocation site reachable from %s: %s", b.Entry, s.reason),
			})
		}
	}
	return diags
}

// AllocFlowCounts computes, for each manifest entry point, the number of
// unsuppressed allocation sites statically reachable from it. The
// cross-check tests compare these against the runtime AllocGuard
// measurements: static analysis walks every branch, so its count must
// never be below what one execution observes.
func AllocFlowCounts(pkgs []*Package) (map[string]int, error) {
	sup, _ := newSuppressor(pkgs)
	cg := BuildCallGraph(pkgs)
	inSet := make(map[*types.Package]bool, len(pkgs))
	for _, p := range pkgs {
		inSet[p.Types] = true
	}
	counts := make(map[string]int)
	for _, b := range DefaultAllocBudgets() {
		entry := FuncNamed(pkgs, b.Entry)
		if entry == nil {
			return nil, fmt.Errorf("lint: allocflow entry %q not found", b.Entry)
		}
		reach := cg.Reachable(entry)
		n := 0
		for _, node := range cg.Nodes() {
			if !reach[node.Fn] {
				continue
			}
			for _, s := range classifyAllocs(node, cg, inSet) {
				if !sup.Suppressed("allocflow", s.pos) {
					n++
				}
			}
		}
		counts[b.Entry] = n
	}
	return counts, nil
}

// classifyAllocs walks one function body and returns its classified
// allocation sites in source order.
func classifyAllocs(node *CallNode, cg *CallGraph, inSet map[*types.Package]bool) []allocSite {
	w := &allocWalker{
		p:        node.Pkg,
		cg:       cg,
		inSet:    inSet,
		decl:     node.Decl,
		evidence: map[string]bool{},
		iife:     map[*ast.FuncLit]bool{},
		consumed: map[ast.Node]bool{},
	}
	w.collectEvidence(node.Decl.Body)
	ast.Inspect(node.Decl.Body, w.visit)
	return w.sites
}

type allocWalker struct {
	p     *Package
	cg    *CallGraph
	inSet map[*types.Package]bool
	decl  *ast.FuncDecl
	// evidence records expressions (by source text) with capacity
	// evidence in this function: created via make with an explicit
	// capacity, or re-sliced to [:0] / three-index form before use.
	evidence map[string]bool
	iife     map[*ast.FuncLit]bool
	consumed map[ast.Node]bool // composite literals already counted behind &
	sites    []allocSite
}

func (w *allocWalker) add(pos token.Pos, reason string) {
	w.sites = append(w.sites, allocSite{pos: w.p.Fset.Position(pos), reason: reason})
}

// collectEvidence finds capacity evidence and immediately-invoked function
// literals before classification.
func (w *allocWalker) collectEvidence(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) != len(st.Rhs) {
				return true
			}
			for i := range st.Lhs {
				lhs := types.ExprString(ast.Unparen(st.Lhs[i]))
				rhs := ast.Unparen(st.Rhs[i])
				if call, ok := rhs.(*ast.CallExpr); ok && w.builtinName(call) == "make" && len(call.Args) == 3 {
					w.evidence[lhs] = true
				}
				if sl, ok := rhs.(*ast.SliceExpr); ok && sliceKeepsCap(sl) {
					w.evidence[lhs] = true
				}
			}
		case *ast.CallExpr:
			if lit, ok := ast.Unparen(st.Fun).(*ast.FuncLit); ok {
				w.iife[lit] = true
			}
		}
		return true
	})
}

// sliceKeepsCap reports x[:0] and three-index slice expressions: both pin
// the destination's capacity, which is the idiomatic reuse pattern the
// append heuristic accepts as evidence.
func sliceKeepsCap(sl *ast.SliceExpr) bool {
	if sl.Slice3 {
		return true
	}
	if lit, ok := sl.High.(*ast.BasicLit); ok && lit.Value == "0" {
		return true
	}
	return false
}

func (w *allocWalker) builtinName(call *ast.CallExpr) string {
	if tv, ok := w.p.Info.Types[call.Fun]; ok && tv.IsBuiltin() {
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			return id.Name
		}
	}
	return ""
}

func (w *allocWalker) visit(n ast.Node) bool {
	switch x := n.(type) {
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			if lit, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
				w.add(x.Pos(), "&composite literal escapes to the heap")
				w.consumed[lit] = true
			}
		}
	case *ast.CompositeLit:
		if w.consumed[x] {
			return true
		}
		tv, ok := w.p.Info.Types[x]
		if !ok {
			return true
		}
		switch tv.Type.Underlying().(type) {
		case *types.Slice:
			w.add(x.Pos(), "slice literal allocates its backing array")
		case *types.Map:
			w.add(x.Pos(), "map literal allocates")
		}
		// Bare struct literals usually stay on the stack; when one escapes
		// it does so through a conversion or call the other classes catch.
	case *ast.CallExpr:
		w.call(x)
		return true
	case *ast.FuncLit:
		if w.iife[x] {
			return true // invoked on the spot: no closure object
		}
		if n := w.captureCount(x); n > 0 {
			w.add(x.Pos(), fmt.Sprintf("function literal captures %d variable(s): the closure allocates", n))
		}
	case *ast.GoStmt:
		w.add(x.Pos(), "go statement spawns a goroutine")
	case *ast.BinaryExpr:
		if x.Op == token.ADD {
			if tv, ok := w.p.Info.Types[x]; ok && tv.Value == nil && isStringType(tv.Type) {
				w.add(x.Pos(), "string concatenation allocates")
			}
		}
	case *ast.AssignStmt:
		for _, lhs := range x.Lhs {
			if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
				if tv, ok := w.p.Info.Types[idx.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						w.add(idx.Pos(), "map assignment may grow the table")
					}
				}
			}
		}
	}
	return true
}

// call classifies one call expression: conversion, builtin, boxing at the
// call boundary, or a call edge that leaves the analyzed set.
func (w *allocWalker) call(call *ast.CallExpr) {
	if tv, ok := w.p.Info.Types[call.Fun]; ok && tv.IsType() {
		w.conversion(call, tv.Type)
		return
	}
	if name := w.builtinName(call); name != "" {
		w.builtin(call, name)
		return
	}
	w.boxing(call)

	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		_ = lit // immediately invoked: body classified inline
		return
	}
	callee := w.cg.ResolveCall(w.p, call)
	if callee == nil {
		w.add(call.Pos(), fmt.Sprintf("dynamic call %s: target unresolved, attributed as allocating", types.ExprString(call.Fun)))
		return
	}
	if w.cg.Node(callee) != nil {
		return // body is in the analyzed set; its sites are classified there
	}
	if fnPkg := callee.Pkg(); fnPkg != nil && w.inSet[fnPkg] {
		return // declared in an analyzed package without a body here (rare)
	}
	if allocExempt(callee) {
		return
	}
	w.add(call.Pos(), fmt.Sprintf("call leaves the analyzed set: %s may allocate", funcDisplay(callee)))
}

// conversion flags string↔[]byte/[]rune copies and boxing conversions.
func (w *allocWalker) conversion(call *ast.CallExpr, to types.Type) {
	if len(call.Args) != 1 {
		return
	}
	fromTV, ok := w.p.Info.Types[call.Args[0]]
	if !ok {
		return
	}
	from := fromTV.Type
	switch {
	case fromTV.Value != nil && isStringType(from):
		// Constant string converted to []byte still allocates, but a
		// constant-to-constant conversion does not.
		if isByteSlice(to) || isRuneSlice(to) {
			w.add(call.Pos(), "string→[]byte/[]rune conversion copies")
		}
	case isStringType(from) && (isByteSlice(to) || isRuneSlice(to)):
		w.add(call.Pos(), "string→[]byte/[]rune conversion copies")
	case (isByteSlice(from) || isRuneSlice(from)) && isStringType(to):
		w.add(call.Pos(), "[]byte/[]rune→string conversion copies")
	case types.IsInterface(to.Underlying()) && !types.IsInterface(from.Underlying()) && fromTV.Value == nil:
		w.add(call.Pos(), "interface conversion boxes the value")
	}
}

// builtin flags the allocating builtins.
func (w *allocWalker) builtin(call *ast.CallExpr, name string) {
	switch name {
	case "append":
		if len(call.Args) == 0 {
			return
		}
		dst := ast.Unparen(call.Args[0])
		if sl, ok := dst.(*ast.SliceExpr); ok && sliceKeepsCap(sl) {
			return // append(x[:0], ...) reuses x's backing array
		}
		if w.evidence[types.ExprString(dst)] {
			return // destination has capacity evidence in this function
		}
		w.add(call.Pos(), "append may grow its backing array (no capacity evidence)")
	case "make":
		if len(call.Args) == 0 {
			return
		}
		tv, ok := w.p.Info.Types[call.Args[0]]
		if !ok || tv.Type == nil {
			return
		}
		switch tv.Type.Underlying().(type) {
		case *types.Slice:
			w.add(call.Pos(), "make([]T) allocates a backing array")
		case *types.Map:
			w.add(call.Pos(), "make(map) allocates")
		case *types.Chan:
			w.add(call.Pos(), "make(chan) allocates")
		}
	case "new":
		w.add(call.Pos(), "new(T) allocates")
	}
}

// boxing flags concrete arguments passed to interface parameters — the
// mechanism behind fmt and error-wrapping allocations. One site per call.
func (w *allocWalker) boxing(call *ast.CallExpr) {
	tv, ok := w.p.Info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok || sig.Params() == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			last := params.At(params.Len() - 1).Type()
			if sl, ok := last.Underlying().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt.Underlying()) {
			continue
		}
		at, ok := w.p.Info.Types[arg]
		if !ok || at.Type == nil || at.IsNil() {
			continue
		}
		if types.IsInterface(at.Type.Underlying()) {
			continue
		}
		if _, isPtr := at.Type.Underlying().(*types.Pointer); isPtr {
			continue // pointers box without a new heap object
		}
		w.add(call.Pos(), fmt.Sprintf("interface boxing: concrete argument(s) to %s", types.ExprString(call.Fun)))
		return
	}
}

// captureCount counts variables the literal captures from its enclosing
// function (a closure with captures allocates its environment).
func (w *allocWalker) captureCount(lit *ast.FuncLit) int {
	captured := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := w.p.Info.Uses[id]
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured: declared inside the enclosing declaration but outside
		// the literal.
		if v.Pos() >= w.decl.Pos() && v.Pos() < w.decl.End() &&
			!(v.Pos() >= lit.Pos() && v.Pos() < lit.End()) {
			captured[v] = true
		}
		return true
	})
	return len(captured)
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func isRuneSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Rune
}

// allocExempt lists callees outside the analyzed set that are known not to
// allocate: lock operations, atomics, bit tricks, monotonic clock reads
// and the fixed-size binary codecs. Everything else outside the set is
// attributed.
func allocExempt(fn *types.Func) bool {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	name := fn.Name()
	switch pkg {
	case "sync/atomic", "math/bits", "math":
		return true
	case "sync":
		switch name {
		case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock", "Add", "Done", "Put", "Signal", "Broadcast":
			// sync.Pool.Get is deliberately not here: a pool miss runs New.
			return true
		}
	case "time":
		switch name {
		case "Now", "Since", "Sub", "Before", "Compare", "Equal", "IsZero", "Unix", "UnixNano", "UnixMilli",
			"Nanoseconds", "Seconds", "Milliseconds", "Microseconds", "Round", "Truncate":
			// time.After (the function) allocates a timer; Time.After (the
			// method) is a pure comparison.
			return name != "After" || recvTypeOf(fn) != nil
		case "After":
			return recvTypeOf(fn) != nil
		}
	case "encoding/binary":
		switch name {
		case "Read", "Write", "Size":
			return false
		}
		return true
	case "sort":
		switch name {
		case "Search", "SearchInts", "SearchStrings":
			return true
		}
	}
	return false
}

// funcDisplay renders a callee as pkg.Name or pkg.(T).Name.
func funcDisplay(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Name() + "."
	}
	if rt := recvTypeOf(fn); rt != nil {
		if n := namedOrigin(rt); n != nil {
			return pkg + n.Obj().Name() + "." + fn.Name()
		}
	}
	return pkg + fn.Name()
}
