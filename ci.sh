#!/bin/sh
# ci.sh — the checks a change must pass before merging.
#
#   ./ci.sh          # vet, build, tests, then the same tests under -race
#
# The race pass is the slow half; it exists because every layer of this
# stack is concurrent (transport pumps, gcs event loops, per-request ORB
# goroutines, the metrics registry) and plain tests will happily miss an
# unsynchronised counter.
set -eu

cd "$(dirname "$0")"

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race =="
go test -race ./...

echo "ci: all checks passed"
