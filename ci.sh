#!/bin/sh
# ci.sh — the checks a change must pass before merging.
#
#   ./ci.sh              # vet, lint, build, tests, then the same tests under -race
#   CI_SHORT=1 ./ci.sh   # skip the race pass (quick pre-push loop)
#
# The race pass is the slow half; it exists because every layer of this
# stack is concurrent (transport pumps, gcs event loops, per-request ORB
# goroutines, the metrics registry) and plain tests will happily miss an
# unsynchronised counter. newtop-lint is the protocol-aware static pass:
# wire encode/decode symmetry, no blocking under event-loop mutexes, no
# wall clock in ordering decisions, no orphaned goroutines, no silently
# dropped send errors, and static per-entry-point allocation budgets over
# the hot-path call graph (see README "Static analysis").
set -eu

cd "$(dirname "$0")"

echo "== go vet =="
go vet ./...

if [ "${CI_SHORT:-0}" = "1" ]; then
	# One combined invocation: every rule (allocflow included) shares the
	# loader's type-checked package cache, so the quick loop pays the
	# standard-library source-import cost exactly once.
	echo "== newtop-lint (all rules, combined) =="
	go run ./cmd/newtop-lint ./...
else
	echo "== newtop-lint =="
	go run ./cmd/newtop-lint -rules wiresym,wirepool,lockblock,detclock,timerwheel,goorphan,errdrop ./...

	# Static allocation budgets: every hot-path entry point in the
	# internal/lint manifest must keep its reachable allocation-site count
	# under its ceiling (see DESIGN.md §13). A new composite literal,
	# boxing conversion or growing append anywhere in an entry point's
	# call closure fails here with the offending sites listed.
	echo "== static alloc budgets =="
	go run ./cmd/newtop-lint -rules allocflow ./...
fi

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

# Allocation budgets for the protocol hot paths: the multicast→deliver
# cycle, wire encode/decode, the pooled writer, the TCP transport's
# enqueue/flush and pooled-read paths, the flight recorder (which must
# journal an event with zero allocations), and the leased local read. A
# regression back to per-message maps, per-attempt sorting, per-encode
# buffers or per-frame read buffers fails here long before it would show
# up in a benchmark.
echo "== alloc budgets =="
go test -run AllocGuard ./internal/gcs/ ./internal/core/ ./internal/wire/ ./internal/transport/tcpnet/ ./internal/obs/flight/

if [ "${CI_SHORT:-0}" = "1" ]; then
	echo "ci: CI_SHORT=1, skipping the race pass"
else
	echo "== go test -race =="
	# -p 1: the race pass is CPU-bound and the protocol tests are
	# timing-sensitive; running every package's tests concurrently on a
	# small box is pure oversubscription that starves members past their
	# suspicion windows. Serial packages cost nothing on one core.
	go test -race -p 1 ./...
fi

# Smoke the pipelined invocation path end to end: the async window plus
# sender-side batching must beat the serial loop (the table prints the
# measured speedup; the acceptance floor is 2x on the LAN placement).
echo "== pipeline smoke =="
go run ./cmd/newtop-bench -experiment pipeline -quick

# Smoke the real-socket transport the same way: a loopback TCP peer group
# over the writer-pipeline transport. Catches anything the in-memory
# transports can't — framing, redial, vectored-write batching.
echo "== tcpnet smoke =="
go run ./cmd/newtop-bench -experiment tcpnet -quick

# Journal invariants: replay the flight recorder's protocol journal from
# a quick hotpath run through the stall detector and the delivery-order
# verifier. Any diagnosed stall, ordering regression or (the window being
# complete) unexplained gap fails the stage.
echo "== journal invariants =="
go run ./cmd/newtop-bench -experiment hotpath -quick -journal-check

# Smoke the lease-based read path: the 95/5 read-heavy mix must clear the
# 5x read-throughput floor over the all-ordered loop, and the journal
# must show no leased read served past its staleness bound (both are
# enforced inside the experiment).
echo "== read path smoke =="
go run ./cmd/newtop-bench -experiment readpath -quick

# Smoke the sharded fabric: 1 vs 4 shard groups on loopback TCP must
# clear the 2.5x aggregate-throughput floor, with the per-shard
# delivery-order journal check on in-run (both enforced inside the
# experiment).
echo "== shards smoke =="
go run ./cmd/newtop-bench -experiment shards -quick

# Smoke the delivery engine at group-count scale: 512 idle event-driven
# groups plus a hot subset in one process. The goroutine ceiling (O(1)
# timer goroutines regardless of group count) and the wheel's per-sweep
# budget are enforced inside the experiment. The committed full-scale
# artifact is BENCH_manygroups.json (10k groups, -json run).
echo "== manygroups smoke =="
go run ./cmd/newtop-bench -experiment manygroups -quick

echo "ci: all checks passed"
