// Package newtop is a Go reproduction of "Implementing Flexible Object
// Group Invocation in Networked Systems" (G. Morgan and S.K. Shrivastava,
// DSN 2000): the NewTop object group service — a virtually synchronous
// group communication service with symmetric and asymmetric total-order
// protocols, and a flexible invocation layer providing closed groups,
// open groups (request managers), the restricted/asynchronous-forwarding
// optimisations, group-to-group invocation and four reply modes.
//
// See DESIGN.md for the system inventory, EXPERIMENTS.md for the
// paper-versus-measured evaluation, and README.md for a tour. The public
// surface lives in internal/core (the NewTop service object), internal/gcs
// (the group communication service) and internal/orb (the mini-ORB); the
// benchmarks in bench_test.go regenerate every table and figure of the
// paper's §5.
package newtop
